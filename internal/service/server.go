package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"halotis/api"
)

// Server is the simulation service: an http.Handler plus the cache, engine
// pools and worker queue behind it. Create with New, mount Handler, Close
// on shutdown (drains in-flight jobs).
type Server struct {
	cfg     Config
	cache   *circuitCache
	results *resultCache
	queue   *workerPool
	met     metrics
	mux     *http.ServeMux
}

// New builds a Server from the config (zero value = defaults).
func New(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newCircuitCache(cfg.Lib, cfg.CacheSize, cfg.EnginePoolSize, cfg.ReplicaID),
		results: newResultCache(cfg.ResultCacheSize),
		queue:   newWorkerPool(cfg.Workers, cfg.QueueDepth),
		mux:     http.NewServeMux(),
	}
	s.met.start = time.Now()
	s.met.replica = cfg.ReplicaID
	s.mux.HandleFunc("POST /v1/circuits", s.handleUpload)
	s.mux.HandleFunc("GET /v1/circuits", s.handleList)
	s.mux.HandleFunc("GET /v1/circuits/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/circuits/{id}", s.handleEvict)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/simulate/batch", s.handleBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler serving the API: the route mux behind
// the deadline-budget middleware.
func (s *Server) Handler() http.Handler { return s.withBudget(s.mux) }

// withBudget applies the propagated deadline budget (api.BudgetHeader):
// requests arriving with an already-expired budget are shed at admission
// with 504 deadline_exceeded — no parsing, no queueing, no simulation —
// and live budgets narrow the request context so every downstream stage
// (queue dequeue, kernel run) observes the caller's deadline.
func (s *Server) withBudget(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		budget, ok := api.BudgetFrom(r.Header)
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		if budget <= 0 {
			s.met.deadlineShed.Add(1)
			s.writeError(w, http.StatusGatewayTimeout,
				api.DeadlineExceededf("budget expired before admission (%s %s)", r.Method, r.URL.Path))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// Close stops job admission and drains: queued and in-flight jobs run to
// completion before Close returns. Call http.Server.Shutdown first so no
// new requests arrive while draining.
func (s *Server) Close() { s.queue.Close() }

// CacheStats snapshots the compiled-circuit cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// ResultCacheStats snapshots the result-cache counters.
func (s *Server) ResultCacheStats() ResultCacheStats { return s.results.Stats() }

// QueueStats snapshots the worker-queue counters.
func (s *Server) QueueStats() QueueStats { return s.queue.Stats() }

// --- response plumbing ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing useful left to do.
		return
	}
}

// codeForStatus falls back from the error taxonomy to the HTTP status when
// an error carries no sentinel (e.g. raw JSON decode failures).
func codeForStatus(status int, err error) string {
	if c := api.CodeOf(err); c != "" {
		return c
	}
	switch status {
	case http.StatusBadRequest:
		return api.CodeInvalidRequest
	case http.StatusNotFound:
		return api.CodeNotFound
	case http.StatusServiceUnavailable:
		return api.CodeOverloaded
	case http.StatusGatewayTimeout:
		return api.CodeCanceled
	}
	return api.CodeRunFailed
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.met.httpErrors.Add(1)
	resp := ErrorResponse{Error: err.Error(), Code: codeForStatus(status, err), Replica: s.cfg.ReplicaID}
	if ra, ok := api.RetryAfter(err); ok && ra > 0 {
		resp.RetryAfterMs = ra.Milliseconds()
	}
	s.writeJSON(w, status, resp)
}

// retryAfter is the hint attached to 503 responses.
const retryAfter = time.Second

// writeBusy maps queue admission failures to 503 with a retry hint, typed
// as ErrOverloaded on the wire.
func (s *Server) writeBusy(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds())))
	s.writeError(w, http.StatusServiceUnavailable, &api.OverloadedError{RetryAfter: retryAfter, Cause: err})
}

// simStatus maps a run error to an HTTP status via the error taxonomy:
// timeouts and cancellations are gateway timeouts, evicted circuit IDs are
// not-found, everything else (malformed stimulus, unknown nets, oscillation
// limits) is an unprocessable request.
func simStatus(err error) int {
	switch {
	case errors.Is(err, api.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, api.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, api.ErrCircuitNotFound):
		return http.StatusNotFound
	case errors.Is(err, api.ErrOverloaded):
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// runCtx derives a run's context from its parent: timeout_ms (capped by
// MaxTimeout) adds a deadline. A timeout_ms too large for time.Duration
// saturates instead of overflowing, so the operator's MaxTimeout cap
// always still applies.
func (s *Server) runCtx(parent context.Context, timeoutMs float64) (context.Context, context.CancelFunc) {
	var d time.Duration
	if timeoutMs > 0 {
		if timeoutMs >= float64(math.MaxInt64)/float64(time.Millisecond) {
			d = math.MaxInt64
		} else {
			d = time.Duration(timeoutMs * float64(time.Millisecond))
		}
	}
	if s.cfg.MaxTimeout > 0 && (d == 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d > 0 {
		return context.WithTimeout(parent, d)
	}
	return context.WithCancel(parent)
}

// shedError types a dead-context error for the wire: a deadline expiry is
// a shed (the budget ran out before the work executed), anything else a
// cancellation.
func shedError(cause error, when string) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return api.DeadlineExceededf("deadline budget expired %s", when)
	}
	return api.Canceled(cause)
}

// submitAndWait admits a job to the worker queue and writes its outcome:
// 503 with Retry-After when the queue refuses it, the job's own status and
// error otherwise. A job whose request context dies while queued is shed at
// dequeue (never run) and reported as 504. If the client disconnects first,
// the handler returns and the buffered channel lets the job finish into the
// void (simulation jobs observe the canceled request context and abort
// quickly).
func (s *Server) submitAndWait(w http.ResponseWriter, r *http.Request, job func() (any, int, error)) {
	type out struct {
		v      any
		status int
		err    error
	}
	ch := make(chan out, 1)
	if err := s.queue.SubmitTask(r.Context(), func() {
		v, status, err := job()
		ch <- out{v, status, err}
	}, func(cause error) {
		ch <- out{nil, http.StatusGatewayTimeout, shedError(cause, "while queued")}
	}); err != nil {
		s.writeBusy(w, err)
		return
	}
	select {
	case o := <-ch:
		if o.err != nil {
			s.writeError(w, o.status, o.err)
			return
		}
		s.writeJSON(w, http.StatusOK, o.v)
	case <-r.Context().Done():
		if !errors.Is(r.Context().Err(), context.DeadlineExceeded) {
			return // client went away; nobody reads a response
		}
		// The propagated budget expired with the job queued or running.
		// Prefer the job's own typed outcome if it has already landed
		// (mid-run aborts surface as canceled within an event pop);
		// otherwise report the shed now rather than waiting for dequeue.
		s.met.deadlineShed.Add(1)
		select {
		case o := <-ch:
			if o.err != nil {
				s.writeError(w, o.status, o.err)
				return
			}
			s.writeJSON(w, http.StatusOK, o.v)
		default:
			s.writeError(w, http.StatusGatewayTimeout,
				shedError(r.Context().Err(), "before the job finished"))
		}
	}
}

// resolve finds the target circuit: by cached ID, or by registering inline
// netlist text exactly as an upload would.
func (s *Server) resolve(id, netlistText, format string) (*cacheEntry, int, error) {
	if id != "" {
		ent, ok := s.cache.Get(id)
		if !ok {
			return nil, http.StatusNotFound, api.NotFoundf("unknown circuit %q", id)
		}
		return ent, 0, nil
	}
	ent, _, err := s.cache.Add(netlistText, format, "")
	if err != nil {
		return nil, http.StatusUnprocessableEntity, api.InvalidRequestf("parse netlist: %v", err)
	}
	return ent, 0, nil
}

// --- handlers ---

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	s.met.requests[routeUpload].Add(1)
	req, err := DecodeUploadRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submitAndWait(w, r, func() (any, int, error) {
		ent, cached, err := s.cache.Add(req.Netlist, req.Format, req.Name)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, api.InvalidRequestf("parse netlist: %v", err)
		}
		return UploadResponse{CircuitInfo: ent.info, Cached: cached}, http.StatusOK, nil
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.met.requests[routeCircuits].Add(1)
	s.writeJSON(w, http.StatusOK, s.cache.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.met.requests[routeCircuits].Add(1)
	ent, ok := s.cache.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, api.NotFoundf("unknown circuit %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, ent.info)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	s.met.requests[routeCircuits].Add(1)
	if !s.cache.Evict(r.PathValue("id")) {
		s.writeError(w, http.StatusNotFound, api.NotFoundf("unknown circuit %q", r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.met.requests[routeSimulate].Add(1)
	req, err := DecodeSimRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.runCtx(r.Context(), req.TimeoutMs)
	defer cancel()

	s.submitAndWait(w, r, func() (any, int, error) {
		ent, status, err := s.resolve(req.Circuit, req.Netlist, req.Format)
		if err != nil {
			return nil, status, err
		}
		rep, err := s.runOne(ctx, ent, &req.Request)
		if err != nil {
			return nil, simStatus(err), err
		}
		return rep, http.StatusOK, nil
	})
}

// handleBatch fans the batch's requests out across the worker queue, so a
// batch of N jobs on a W-worker daemon takes ~N/W serial job times instead
// of N. Admission control stays at batch granularity: the resolve step is
// the one nonblocking queue submit (full queue means fast 503 for the
// whole batch); once admitted, the remaining jobs enter the queue with a
// blocking submit — they wait for capacity instead of being dropped
// midway. The coordinator is the HTTP handler goroutine, never a worker,
// so waiting cannot deadlock the pool.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.requests[routeBatch].Add(1)
	req, err := DecodeBatchRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	// Resolve (and compile, for inline netlists) as the admission job.
	type resolved struct {
		ent    *cacheEntry
		status int
		err    error
	}
	rch := make(chan resolved, 1)
	if err := s.queue.SubmitTask(r.Context(), func() {
		ent, status, err := s.resolve(req.Circuit, req.Netlist, req.Format)
		rch <- resolved{ent, status, err}
	}, func(cause error) {
		rch <- resolved{nil, http.StatusGatewayTimeout, shedError(cause, "while queued")}
	}); err != nil {
		s.writeBusy(w, err)
		return
	}
	var ent *cacheEntry
	select {
	case o := <-rch:
		if o.err != nil {
			s.writeError(w, o.status, o.err)
			return
		}
		ent = o.ent
	case <-r.Context().Done():
		return
	}

	// Fan out: one queue job per request. By default the first failure
	// cancels the rest (in-flight runs abort at event-pop granularity) and
	// the response reports the root cause, not a sibling's secondary
	// cancellation. In partial mode (BatchOptions.AllowPartial) failures
	// stay in their own slot: siblings keep running and the response
	// carries per-request errors alongside the finished reports.
	partial := req.Options != nil && req.Options.AllowPartial
	n := len(req.Requests)
	reports := make([]*Report, n)
	errs := make([]error, n)
	fanCtx, cancel := context.WithCancel(r.Context())
	defer cancel()
	var wg sync.WaitGroup
	for i := range req.Requests {
		sub := &req.Requests[i]
		wg.Add(1)
		job := func() {
			defer wg.Done()
			if fanCtx.Err() != nil {
				errs[i] = api.Canceled(fanCtx.Err())
				return
			}
			jobCtx, jobCancel := s.runCtx(fanCtx, sub.TimeoutMs)
			defer jobCancel()
			rep, err := s.runOne(jobCtx, ent, sub)
			if err != nil {
				errs[i] = err
				if !partial {
					cancel()
				}
				return
			}
			reports[i] = rep
		}
		expired := func(cause error) {
			defer wg.Done()
			errs[i] = shedError(cause, "while queued")
		}
		if err := s.queue.SubmitWaitTask(fanCtx, job, expired); err != nil {
			wg.Done()
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull) {
				// Shutdown/backpressure mid-fan-out is an availability
				// condition, reported like any other admission refusal.
				err = &api.OverloadedError{RetryAfter: retryAfter, Cause: err}
			}
			errs[i] = api.MapRunError(err)
			if partial {
				continue
			}
			cancel()
			break
		}
	}
	wg.Wait()

	if partial {
		resp := &BatchResponse{Circuit: ent.info.ID, Reports: make([]Report, n)}
		for i, rep := range reports {
			if errs[i] != nil {
				if resp.Errors == nil {
					resp.Errors = make([]*api.ErrorResponse, n)
				}
				resp.Errors[i] = api.ErrorResponseOf(errs[i])
				continue
			}
			resp.Reports[i] = *rep
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}

	if idx, err := api.FirstFailure(errs); err != nil {
		s.writeError(w, simStatus(err), fmt.Errorf("requests[%d]: %w", idx, err))
		return
	}
	resp := &BatchResponse{Circuit: ent.info.ID, Reports: make([]Report, n)}
	for i, rep := range reports {
		resp.Reports[i] = *rep
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.met.requests[routeHealth].Add(1)
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Circuits:      s.cache.Stats().Entries,
		QueueDepth:    s.queue.Depth(),
		Workers:       s.cfg.Workers,
		Replica:       s.cfg.ReplicaID,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.requests[routeMetrics].Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.cache.Stats(), s.results.Stats(), s.queue.Stats())
}

// --- run execution ---

// runOne serves one request against a resolved circuit: first from the
// result cache (simulation is a pure function of circuit + stimulus +
// options, so a repeated key is answered without a kernel run), otherwise
// by acquiring a warm engine from the circuit's pool, running, and caching
// the materialized report. Steady-state cache misses still perform no
// engine setup work: the pool hands back a buffer-grown engine and Run
// reuses it in place.
func (s *Server) runOne(ctx context.Context, ent *cacheEntry, req *Request) (*Report, error) {
	st, err := req.Prepare(ent.ir)
	if err != nil {
		return nil, err
	}
	key := req.Options().PoolKey()
	// The event guard bounds how long one request pins a worker; the
	// operator's cap beats whatever the client asked for.
	if s.cfg.MaxEvents > 0 && key.MaxEvents > s.cfg.MaxEvents {
		key.MaxEvents = s.cfg.MaxEvents
	}
	ck := resultKey(ent.info.ID, st, req, key)
	if rep, ok := s.results.Get(ck); ok {
		return rep, nil
	}

	eng := ent.pools.Acquire(key)
	res, err := eng.RunContext(ctx, st, req.TEnd)
	if err != nil {
		ent.pools.Release(key, eng)
		s.met.recordRun(0, 0, err)
		return nil, api.MapRunError(err)
	}
	s.met.recordRun(res.Stats.EventsProcessed, res.Elapsed, nil)
	rep := api.BuildReport(ent.ir, ent.info.ID, res, req)
	rep.Replica = s.cfg.ReplicaID
	ent.pools.Release(key, eng)
	s.results.Put(ck, rep)
	return rep, nil
}
