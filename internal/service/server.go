package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"halotis/api"
	"halotis/internal/obs"
	"halotis/internal/obs/flight"
	"halotis/internal/obs/tsdb"
)

// Server is the simulation service: an http.Handler plus the cache, engine
// pools and worker queue behind it. Create with New, mount Handler, Close
// on shutdown (drains in-flight jobs).
type Server struct {
	cfg     Config
	cache   *circuitCache
	results *resultCache
	queue   *workerPool
	met     metrics
	traces  *obs.Recorder
	log     *slog.Logger
	mux     *http.ServeMux

	// Fleet-health surface (status.go): the series ring and its sampler,
	// the flight recorder, SLO accounting, and the per-endpoint slow
	// promotion thresholds (ns; derived from recent p99s by the sampler).
	db           *tsdb.DB
	flight       *flight.Ring
	slowNs       [routeCount]atomic.Int64
	sloTotal     atomic.Uint64
	sloBad       atomic.Uint64
	sampledTotal atomic.Uint64
	sampledBad   atomic.Uint64
	samplerStop  chan struct{}
	samplerDone  chan struct{}
	closeOnce    sync.Once
}

// New builds a Server from the config (zero value = defaults).
func New(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newCircuitCache(cfg.Lib, cfg.CacheSize, cfg.EnginePoolSize, cfg.ReplicaID),
		results: newResultCache(cfg.ResultCacheSize),
		queue:   newWorkerPool(cfg.Workers, cfg.QueueDepth),
		traces:  obs.NewRecorder(cfg.ReplicaID, cfg.TraceCapacity),
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
	}
	s.met.start = time.Now()
	s.met.replica = cfg.ReplicaID
	s.met.init()
	if cfg.FlightCapacity > 0 {
		s.flight = flight.NewRing(cfg.FlightCapacity)
	}
	// Until the sampler has a p99 to derive from, "slow" means "past the
	// SLO target".
	for r := range s.slowNs {
		s.slowNs[r].Store(cfg.SLOTargetP99.Nanoseconds())
	}
	if cfg.SeriesWindows > 0 {
		s.db = tsdb.New(cfg.SeriesResolution, cfg.SeriesWindows)
		s.samplerStop = make(chan struct{})
		s.samplerDone = make(chan struct{})
		go s.runSampler()
	}
	s.mux.HandleFunc("POST /v1/circuits", s.route(routeUpload, s.handleUpload))
	s.mux.HandleFunc("GET /v1/circuits", s.route(routeCircuits, s.handleList))
	s.mux.HandleFunc("GET /v1/circuits/{id}", s.route(routeCircuits, s.handleGet))
	s.mux.HandleFunc("DELETE /v1/circuits/{id}", s.route(routeCircuits, s.handleEvict))
	s.mux.HandleFunc("POST /v1/simulate", s.route(routeSimulate, s.handleSimulate))
	s.mux.HandleFunc("POST /v1/simulate/batch", s.route(routeBatch, s.handleBatch))
	s.mux.HandleFunc("GET /healthz", s.route(routeHealth, s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.route(routeMetrics, s.handleMetrics))
	s.mux.HandleFunc("GET /v1/traces", s.route(routeTraces, s.handleTraces))
	s.mux.HandleFunc("GET /v1/traces/{id}", s.route(routeTraces, s.handleTrace))
	s.mux.HandleFunc("GET /v1/status", s.route(routeStatus, s.handleStatus))
	s.mux.HandleFunc("GET /v1/series", s.route(routeSeries, s.handleSeries))
	s.mux.HandleFunc("GET /v1/flightrecorder", s.route(routeFlight, s.handleFlight))
	return s
}

// route counts and times one endpoint's requests: the per-endpoint counter
// and latency histogram are observed here, inside the mux (middleware
// cannot know which pattern matched). API routes additionally feed the SLO
// accounting and the flight recorder (see observe).
func (s *Server) route(r routeID, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		s.met.requests[r].Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, req)
		d := time.Since(start)
		s.met.latency[r].Observe(d.Seconds())
		s.observe(r, req, sw.status, d)
	}
}

// Handler returns the HTTP handler serving the API: the route mux behind
// the deadline-budget middleware, behind the tracing middleware — so even
// requests shed at admission (budget already expired) carry a trace ID.
func (s *Server) Handler() http.Handler { return s.withTrace(s.withBudget(s.mux)) }

// statusWriter captures the response status for spans and request logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// withTrace activates tracing for requests arriving with a Halotis-Trace
// header: the request context carries the trace identity, a root
// "replica.request" span brackets the whole request, and the completed
// request is logged with its trace ID. Untraced requests pay one header
// lookup and are logged at debug only.
func (s *Server) withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID, parent, traced := api.TraceFrom(r.Header)
		// API requests get a flight-recorder Note, and — when untraced — a
		// self-assigned internal trace, so an anomalous request's span tree
		// can be pinned as an exemplar without pre-enabled tracing.
		recorded := s.flight != nil && flightPath(r.URL.Path)
		lvl := slog.LevelDebug
		if traced {
			lvl = slog.LevelInfo
		}
		if !traced && !recorded && !s.log.Enabled(r.Context(), lvl) {
			next.ServeHTTP(w, r) // nothing to record: the untraced fast path
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		var sp *obs.Span
		if traced || recorded {
			ctx := r.Context()
			if traced {
				ctx = obs.WithTrace(ctx, s.traces, traceID, parent)
			} else {
				ctx = obs.WithInternalTrace(ctx, s.traces, api.NewTraceID())
			}
			ctx, sp = obs.Start(ctx, "replica.request")
			sp.SetAttr("method", r.Method)
			sp.SetAttr("path", r.URL.Path)
			if recorded {
				ctx, _ = flight.WithNote(ctx)
			}
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(sw, r)
		if sp != nil {
			sp.SetAttr("status", strconv.Itoa(sw.status))
			sp.End()
		}
		if sw.status >= 500 {
			lvl = slog.LevelWarn
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", time.Since(start)),
		}
		if traced {
			attrs = append(attrs, slog.String("trace_id", traceID))
		}
		s.log.LogAttrs(r.Context(), lvl, "request", attrs...)
	})
}

// withBudget applies the propagated deadline budget (api.BudgetHeader):
// requests arriving with an already-expired budget are shed at admission
// with 504 deadline_exceeded — no parsing, no queueing, no simulation —
// and live budgets narrow the request context so every downstream stage
// (queue dequeue, kernel run) observes the caller's deadline.
func (s *Server) withBudget(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		budget, ok := api.BudgetFrom(r.Header)
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		if budget <= 0 {
			s.met.deadlineShed.Add(1)
			s.writeError(w, r, http.StatusGatewayTimeout,
				api.DeadlineExceededf("budget expired before admission (%s %s)", r.Method, r.URL.Path))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// Close stops job admission and drains: queued and in-flight jobs run to
// completion before Close returns, and the series sampler stops. Call
// http.Server.Shutdown first so no new requests arrive while draining.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.samplerStop != nil {
			close(s.samplerStop)
			<-s.samplerDone
		}
		s.queue.Close()
	})
}

// CacheStats snapshots the compiled-circuit cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// ResultCacheStats snapshots the result-cache counters.
func (s *Server) ResultCacheStats() ResultCacheStats { return s.results.Stats() }

// QueueStats snapshots the worker-queue counters.
func (s *Server) QueueStats() QueueStats { return s.queue.Stats() }

// --- response plumbing ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing useful left to do.
		return
	}
}

// codeForStatus falls back from the error taxonomy to the HTTP status when
// an error carries no sentinel (e.g. raw JSON decode failures).
func codeForStatus(status int, err error) string {
	if c := api.CodeOf(err); c != "" {
		return c
	}
	switch status {
	case http.StatusBadRequest:
		return api.CodeInvalidRequest
	case http.StatusNotFound:
		return api.CodeNotFound
	case http.StatusServiceUnavailable:
		return api.CodeOverloaded
	case http.StatusGatewayTimeout:
		return api.CodeCanceled
	}
	return api.CodeRunFailed
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.met.httpErrors.Add(1)
	resp := ErrorResponse{Error: err.Error(), Code: codeForStatus(status, err), Replica: s.cfg.ReplicaID}
	if ra, ok := api.RetryAfter(err); ok && ra > 0 {
		resp.RetryAfterMs = ra.Milliseconds()
	}
	if tid, _, ok := obs.ContextTrace(r.Context()); ok {
		resp.TraceID = tid
	}
	if n := flight.NoteFrom(r.Context()); n != nil {
		n.Code = resp.Code
	}
	s.writeJSON(w, status, resp)
}

// writeBusy maps queue admission failures to 503, typed as ErrOverloaded
// on the wire. The Retry-After hint is the live queue-drain estimate —
// how long the backlog needs at the observed service rate — not a fixed
// constant, so clients back off proportionally to the actual overload.
func (s *Server) writeBusy(w http.ResponseWriter, r *http.Request, err error) {
	est := s.drainEstimate()
	w.Header().Set("Retry-After", retryAfterHeader(est))
	s.writeError(w, r, http.StatusServiceUnavailable, &api.OverloadedError{RetryAfter: retryAfterHint(est), Cause: err})
}

// simStatus maps a run error to an HTTP status via the error taxonomy:
// timeouts and cancellations are gateway timeouts, evicted circuit IDs are
// not-found, everything else (malformed stimulus, unknown nets, oscillation
// limits) is an unprocessable request.
func simStatus(err error) int {
	switch {
	case errors.Is(err, api.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, api.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, api.ErrCircuitNotFound):
		return http.StatusNotFound
	case errors.Is(err, api.ErrOverloaded):
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// runCtx derives a run's context from its parent: timeout_ms (capped by
// MaxTimeout) adds a deadline. A timeout_ms too large for time.Duration
// saturates instead of overflowing, so the operator's MaxTimeout cap
// always still applies.
func (s *Server) runCtx(parent context.Context, timeoutMs float64) (context.Context, context.CancelFunc) {
	var d time.Duration
	if timeoutMs > 0 {
		if timeoutMs >= float64(math.MaxInt64)/float64(time.Millisecond) {
			d = math.MaxInt64
		} else {
			d = time.Duration(timeoutMs * float64(time.Millisecond))
		}
	}
	if s.cfg.MaxTimeout > 0 && (d == 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d > 0 {
		return context.WithTimeout(parent, d)
	}
	return context.WithCancel(parent)
}

// shedError types a dead-context error for the wire: a deadline expiry is
// a shed (the budget ran out before the work executed), anything else a
// cancellation.
func shedError(cause error, when string) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return api.DeadlineExceededf("deadline budget expired %s", when)
	}
	return api.Canceled(cause)
}

// submitAndWait admits a job to the worker queue and writes its outcome:
// 503 with Retry-After when the queue refuses it, the job's own status and
// error otherwise. A job whose request context dies while queued is shed at
// dequeue (never run) and reported as 504. If the client disconnects first,
// the handler returns and the buffered channel lets the job finish into the
// void (simulation jobs observe the canceled request context and abort
// quickly).
func (s *Server) submitAndWait(w http.ResponseWriter, r *http.Request, job func() (any, int, error)) {
	type out struct {
		v      any
		status int
		err    error
	}
	ch := make(chan out, 1)
	submitted := time.Now()
	if err := s.queue.SubmitTask(r.Context(), func() {
		wait := time.Since(submitted)
		s.met.queueWait.Observe(wait.Seconds())
		obs.Record(r.Context(), "queue.wait", submitted, wait, nil)
		if n := flight.NoteFrom(r.Context()); n != nil {
			n.QueueWaitNs = wait.Nanoseconds()
		}
		v, status, err := job()
		ch <- out{v, status, err}
	}, func(cause error) {
		ch <- out{nil, http.StatusGatewayTimeout, shedError(cause, "while queued")}
	}); err != nil {
		s.writeBusy(w, r, err)
		return
	}
	select {
	case o := <-ch:
		if o.err != nil {
			s.writeError(w, r, o.status, o.err)
			return
		}
		s.writeJSON(w, http.StatusOK, o.v)
	case <-r.Context().Done():
		if !errors.Is(r.Context().Err(), context.DeadlineExceeded) {
			return // client went away; nobody reads a response
		}
		// The propagated budget expired with the job queued or running.
		// Prefer the job's own typed outcome if it has already landed
		// (mid-run aborts surface as canceled within an event pop);
		// otherwise report the shed now rather than waiting for dequeue.
		s.met.deadlineShed.Add(1)
		select {
		case o := <-ch:
			if o.err != nil {
				s.writeError(w, r, o.status, o.err)
				return
			}
			s.writeJSON(w, http.StatusOK, o.v)
		default:
			s.writeError(w, r, http.StatusGatewayTimeout,
				shedError(r.Context().Err(), "before the job finished"))
		}
	}
}

// resolve finds the target circuit: by cached ID, or by registering inline
// netlist text exactly as an upload would. The "compile" span covers both
// paths — its "source" attribute tells a cache lookup from an inline
// parse+compile.
func (s *Server) resolve(ctx context.Context, id, netlistText, format string) (*cacheEntry, int, error) {
	_, sp := obs.Start(ctx, "compile")
	defer sp.End()
	if id != "" {
		sp.SetAttr("source", "cache")
		ent, ok := s.cache.Get(id)
		if !ok {
			err := api.NotFoundf("unknown circuit %q", id)
			sp.Fail(err)
			return nil, http.StatusNotFound, err
		}
		return ent, 0, nil
	}
	sp.SetAttr("source", "inline")
	ent, cached, err := s.cache.Add(netlistText, format, "")
	if err != nil {
		err = api.InvalidRequestf("parse netlist: %v", err)
		sp.Fail(err)
		return nil, http.StatusUnprocessableEntity, err
	}
	if cached {
		sp.SetAttr("source", "inline-cached")
	}
	return ent, 0, nil
}

// --- handlers ---

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeUploadRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	s.submitAndWait(w, r, func() (any, int, error) {
		ent, cached, err := s.cache.Add(req.Netlist, req.Format, req.Name)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, api.InvalidRequestf("parse netlist: %v", err)
		}
		return UploadResponse{CircuitInfo: ent.info, Cached: cached}, http.StatusOK, nil
	})
}

//halotis:noctx lists the in-memory circuit cache; no downstream work
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.cache.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.cache.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, http.StatusNotFound, api.NotFoundf("unknown circuit %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, ent.info)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if !s.cache.Evict(r.PathValue("id")) {
		s.writeError(w, r, http.StatusNotFound, api.NotFoundf("unknown circuit %q", r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

//halotis:noctx serves the in-memory trace ring; no downstream work
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.traces.Traces())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok := s.traces.Trace(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, http.StatusNotFound, api.NotFoundf("unknown trace %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeSimRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.runCtx(r.Context(), req.TimeoutMs)
	defer cancel()

	s.submitAndWait(w, r, func() (any, int, error) {
		ent, status, err := s.resolve(ctx, req.Circuit, req.Netlist, req.Format)
		if err != nil {
			return nil, status, err
		}
		rep, err := s.runOne(ctx, ent, &req.Request)
		if err != nil {
			return nil, simStatus(err), err
		}
		return rep, http.StatusOK, nil
	})
}

// handleBatch fans the batch's requests out across the worker queue, so a
// batch of N jobs on a W-worker daemon takes ~N/W serial job times instead
// of N. Admission control stays at batch granularity: the resolve step is
// the one nonblocking queue submit (full queue means fast 503 for the
// whole batch); once admitted, the remaining jobs enter the queue with a
// blocking submit — they wait for capacity instead of being dropped
// midway. The coordinator is the HTTP handler goroutine, never a worker,
// so waiting cannot deadlock the pool.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeBatchRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}

	// Resolve (and compile, for inline netlists) as the admission job.
	type resolved struct {
		ent    *cacheEntry
		status int
		err    error
	}
	rch := make(chan resolved, 1)
	submitted := time.Now()
	if err := s.queue.SubmitTask(r.Context(), func() {
		wait := time.Since(submitted)
		s.met.queueWait.Observe(wait.Seconds())
		obs.Record(r.Context(), "queue.wait", submitted, wait, nil)
		if n := flight.NoteFrom(r.Context()); n != nil {
			n.QueueWaitNs = wait.Nanoseconds()
		}
		ent, status, err := s.resolve(r.Context(), req.Circuit, req.Netlist, req.Format)
		rch <- resolved{ent, status, err}
	}, func(cause error) {
		rch <- resolved{nil, http.StatusGatewayTimeout, shedError(cause, "while queued")}
	}); err != nil {
		s.writeBusy(w, r, err)
		return
	}
	var ent *cacheEntry
	select {
	case o := <-rch:
		if o.err != nil {
			s.writeError(w, r, o.status, o.err)
			return
		}
		ent = o.ent
	case <-r.Context().Done():
		return
	}

	// Fan out: one queue job per request. By default the first failure
	// cancels the rest (in-flight runs abort at event-pop granularity) and
	// the response reports the root cause, not a sibling's secondary
	// cancellation. In partial mode (BatchOptions.AllowPartial) failures
	// stay in their own slot: siblings keep running and the response
	// carries per-request errors alongside the finished reports.
	partial := req.Options != nil && req.Options.AllowPartial
	n := len(req.Requests)
	reports := make([]*Report, n)
	errs := make([]error, n)
	fanCtx, cancel := context.WithCancel(r.Context())
	defer cancel()
	var wg sync.WaitGroup
	for i := range req.Requests {
		sub := &req.Requests[i]
		wg.Add(1)
		job := func() {
			defer wg.Done()
			if fanCtx.Err() != nil {
				errs[i] = api.Canceled(fanCtx.Err())
				return
			}
			jobCtx, jobCancel := s.runCtx(fanCtx, sub.TimeoutMs)
			defer jobCancel()
			rep, err := s.runOne(jobCtx, ent, sub)
			if err != nil {
				errs[i] = err
				if !partial {
					cancel()
				}
				return
			}
			reports[i] = rep
		}
		expired := func(cause error) {
			defer wg.Done()
			errs[i] = shedError(cause, "while queued")
		}
		if err := s.queue.SubmitWaitTask(fanCtx, job, expired); err != nil {
			wg.Done()
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull) {
				// Shutdown/backpressure mid-fan-out is an availability
				// condition, reported like any other admission refusal.
				err = &api.OverloadedError{RetryAfter: retryAfterHint(s.drainEstimate()), Cause: err}
			}
			errs[i] = api.MapRunError(err)
			if partial {
				continue
			}
			cancel()
			break
		}
	}
	wg.Wait()

	if partial {
		resp := &BatchResponse{Circuit: ent.info.ID, Reports: make([]Report, n)}
		for i, rep := range reports {
			if errs[i] != nil {
				if resp.Errors == nil {
					resp.Errors = make([]*api.ErrorResponse, n)
				}
				resp.Errors[i] = api.ErrorResponseOf(errs[i])
				continue
			}
			resp.Reports[i] = *rep
		}
		if resp.Errors != nil {
			if fn := flight.NoteFrom(r.Context()); fn != nil {
				fn.Partial = true
			}
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}

	if idx, err := api.FirstFailure(errs); err != nil {
		s.writeError(w, r, simStatus(err), fmt.Errorf("requests[%d]: %w", idx, err))
		return
	}
	resp := &BatchResponse{Circuit: ent.info.ID, Reports: make([]Report, n)}
	for i, rep := range reports {
		resp.Reports[i] = *rep
	}
	s.writeJSON(w, http.StatusOK, resp)
}

//halotis:noctx renders local gauges; no downstream work
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Circuits:      s.cache.Stats().Entries,
		QueueDepth:    s.queue.Depth(),
		Workers:       s.cfg.Workers,
		Replica:       s.cfg.ReplicaID,
	})
}

//halotis:noctx renders in-memory counters; no downstream work
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.cache.Stats(), s.results.Stats(), s.queue.Stats(), s.traces, s.flight)
}

// --- run execution ---

// runOne serves one request against a resolved circuit: first from the
// result cache (simulation is a pure function of circuit + stimulus +
// options, so a repeated key is answered without a kernel run), otherwise
// by acquiring a warm engine from the circuit's pool, running, and caching
// the materialized report. Steady-state cache misses still perform no
// engine setup work: the pool hands back a buffer-grown engine and Run
// reuses it in place.
func (s *Server) runOne(ctx context.Context, ent *cacheEntry, req *Request) (*Report, error) {
	st, err := req.Prepare(ent.ir)
	if err != nil {
		return nil, err
	}
	traceID, _, traced := obs.ContextTrace(ctx)
	key := req.Options().PoolKey()
	// The event guard bounds how long one request pins a worker; the
	// operator's cap beats whatever the client asked for.
	if s.cfg.MaxEvents > 0 && key.MaxEvents > s.cfg.MaxEvents {
		key.MaxEvents = s.cfg.MaxEvents
	}
	ck := resultKey(ent.info.ID, st, req, key)
	if rep, ok := s.results.Get(ck); ok {
		if n := flight.NoteFrom(ctx); n != nil {
			n.Cached = true
		}
		rep.TraceID = traceID // Get returned a copy; the cached entry stays clean
		return rep, nil
	}

	_, spAcq := obs.Start(ctx, "engine.acquire")
	eng := ent.pools.Acquire(key)
	spAcq.End()
	// Profiling is per-request run state on a pooled engine: set it for
	// this run, clear it before release so the pool stays profile-free.
	if req.Profile {
		eng.SetProfiling(true)
	}
	// Stream kernel progress into the node's event counter so the series
	// sampler sees events/sec while a long run is still in flight; the
	// engine publishes every event exactly once (including on error
	// paths), so recordRun must not add them again.
	eng.SetProgress(&s.met.simEvents)

	_, spRun := obs.Start(ctx, "kernel.run")
	res, err := eng.RunContext(ctx, st, req.TEnd)
	if err != nil {
		spRun.Fail(err)
		spRun.End()
		eng.SetProfiling(false)
		eng.SetProgress(nil)
		ent.pools.Release(key, eng)
		s.met.recordRun(0, 0, err)
		return nil, api.MapRunError(err)
	}
	if spRun != nil {
		spRun.SetAttr("events", strconv.FormatUint(res.Stats.EventsProcessed, 10))
		spRun.End()
	}
	if n := flight.NoteFrom(ctx); n != nil {
		n.KernelEvents = res.Stats.EventsProcessed
	}
	s.met.recordRun(0, res.Elapsed, nil)
	s.met.kernelRun.Observe(res.Elapsed.Seconds())

	_, spRep := obs.Start(ctx, "report.build")
	rep := api.BuildReport(ent.ir, ent.info.ID, res, req)
	spRep.End()
	rep.Replica = s.cfg.ReplicaID
	eng.SetProfiling(false)
	eng.SetProgress(nil)
	ent.pools.Release(key, eng)
	s.results.Put(ck, rep)
	if !traced {
		return rep, nil
	}
	// The cached report must stay trace-free (a later hit belongs to a
	// different trace); echo the ID on a copy.
	cp := *rep
	cp.TraceID = traceID
	return &cp, nil
}
