package service_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"halotis/api"
	"halotis/client"
	"halotis/internal/cellib"
	"halotis/internal/circuits"
	"halotis/internal/netfmt"
	"halotis/internal/service"
	"halotis/internal/sim"
	"halotis/internal/stimuli"
)

// newTestService spins up a service over httptest and returns the server
// internals plus a typed client.
func newTestService(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, client.New(ts.URL)
}

// c17WireStimulus drives the c17 inputs on the wire types.
func c17WireStimulus() client.Stimulus {
	st := client.Stimulus{}
	for i, in := range []string{"1", "2", "3", "6", "7"} {
		st[in] = client.InputWave{Edges: []client.Edge{
			{T: 2 + float64(i), Rising: true, Slew: 0.2},
			{T: 12 + float64(i), Rising: false, Slew: 0.2},
		}}
	}
	return st
}

func c17Request(st client.Stimulus, tEnd float64) client.Request {
	return client.Request{TEnd: tEnd, Stimulus: st}
}

// TestServiceRoundTrip is the acceptance path: upload a .bench circuit
// once, run N simulations against its ID, and require that no
// recompilation happened on the hits and that every result is bit-identical
// to the in-process engine.
func TestServiceRoundTrip(t *testing.T) {
	s, c := newTestService(t, service.Config{})
	ctx := context.Background()

	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench", Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	if up.Cached {
		t.Error("first upload reported cached")
	}
	if up.Gates != 6 {
		t.Errorf("c17 gates = %d, want 6", up.Gates)
	}

	// Reference: the same workload through the in-process engine.
	lib := cellib.Default06()
	ckt, err := netfmt.ParseBench(strings.NewReader(netfmt.C17Bench()), lib)
	if err != nil {
		t.Fatal(err)
	}
	wire := c17WireStimulus()
	ref, err := sim.New(ckt, sim.Options{}).Run(wire.ToSim(), 30)
	if err != nil {
		t.Fatal(err)
	}

	const n = 20
	for i := 0; i < n; i++ {
		res, err := c.Simulate(ctx, client.SimRequest{Circuit: up.ID, Request: c17Request(wire, 30)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.EventsProcessed != ref.Stats.EventsProcessed ||
			res.Stats.Transitions != ref.Stats.Transitions ||
			res.Stats.EventsFiltered != ref.Stats.EventsFiltered {
			t.Fatalf("run %d diverged from in-process engine: %+v vs %+v", i, res.Stats, ref.Stats)
		}
		for name, want := range ref.OutputLogic(30, lib.VDD/2) {
			if got := res.Outputs[name]; got != want {
				t.Fatalf("run %d output %q = %v, want %v", i, name, got, want)
			}
		}
		if wantCached := i > 0; res.Cached != wantCached {
			t.Errorf("run %d cached = %v, want %v", i, res.Cached, wantCached)
		}
	}

	// Recompilation avoided on hits: exactly one compile for upload + N runs.
	cs := s.CacheStats()
	if cs.Compiles != 1 {
		t.Errorf("compiles = %d after upload + %d runs, want 1", cs.Compiles, n)
	}
	if rate := cs.HitRate(); rate <= 0.9 {
		t.Errorf("cache hit rate = %.3f, want > 0.9", rate)
	}

	// The repeated identical requests hit the result cache: one kernel
	// run, n-1 result-cache hits.
	rs := s.ResultCacheStats()
	if rs.Hits != n-1 || rs.Misses != 1 {
		t.Errorf("result cache hits/misses = %d/%d after %d identical requests, want %d/1", rs.Hits, rs.Misses, n, n-1)
	}
}

// TestServiceResultCacheKeying pins what the result-cache key includes:
// changing the stimulus, the model, the horizon or the output selectors
// must miss; repeating any exact request must hit.
func TestServiceResultCacheKeying(t *testing.T) {
	s, c := newTestService(t, service.Config{})
	ctx := context.Background()
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench"})
	if err != nil {
		t.Fatal(err)
	}
	st := c17WireStimulus()

	variants := []client.Request{
		{TEnd: 30, Stimulus: st},
		{TEnd: 30, Model: "cdm", Stimulus: st},
		{TEnd: 40, Stimulus: st},
		{TEnd: 30, Stimulus: st, Activity: true},
		{TEnd: 30, Stimulus: st, Waveforms: []string{"22"}},
		{TEnd: 30, Stimulus: st, Waveforms: []string{"22", "23"}},
	}
	for i, req := range variants {
		rep, err := c.Simulate(ctx, client.SimRequest{Circuit: up.ID, Request: req})
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if rep.Cached {
			t.Errorf("variant %d: first run reported cached", i)
		}
	}
	if rs := s.ResultCacheStats(); rs.Hits != 0 || rs.Misses != uint64(len(variants)) {
		t.Errorf("after distinct variants: hits/misses = %d/%d, want 0/%d", rs.Hits, rs.Misses, len(variants))
	}
	for i, req := range variants {
		rep, err := c.Simulate(ctx, client.SimRequest{Circuit: up.ID, Request: req})
		if err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
		if !rep.Cached {
			t.Errorf("repeat %d: not served from result cache", i)
		}
	}
	if rs := s.ResultCacheStats(); rs.Hits != uint64(len(variants)) {
		t.Errorf("after repeats: hits = %d, want %d", rs.Hits, len(variants))
	}

	// A timeout change does NOT change the key (it cannot change the
	// deterministic outcome).
	rep, err := c.Simulate(ctx, client.SimRequest{Circuit: up.ID, Request: client.Request{TEnd: 30, Stimulus: st, TimeoutMs: 60000}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cached {
		t.Error("timeout_ms variation missed the result cache")
	}
}

// TestServiceResultCacheDisabled pins the opt-out.
func TestServiceResultCacheDisabled(t *testing.T) {
	s, c := newTestService(t, service.Config{ResultCacheSize: -1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		rep, err := c.Simulate(ctx, client.SimRequest{Netlist: netfmt.C17Bench(), Request: c17Request(c17WireStimulus(), 30)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cached {
			t.Fatal("disabled result cache served a hit")
		}
	}
	if rs := s.ResultCacheStats(); rs.Hits != 0 || rs.Entries != 0 {
		t.Errorf("disabled cache stats = %+v, want empty", rs)
	}
}

func TestServiceInlineNetlistAndModels(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	for _, model := range []string{"ddm", "cdm"} {
		req := c17Request(c17WireStimulus(), 30)
		req.Model = model
		res, err := c.Simulate(ctx, client.SimRequest{Netlist: netfmt.C17Bench(), Format: "auto", Request: req})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if res.Model != model {
			t.Errorf("model = %q, want %q", res.Model, model)
		}
		if res.Stats.EventsProcessed == 0 {
			t.Errorf("%s: no events processed", model)
		}
	}
}

func TestServiceBatchMatchesSingles(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench"})
	if err != nil {
		t.Fatal(err)
	}

	reqs := make([]client.Request, 6)
	for i := range reqs {
		st := c17WireStimulus()
		// Stagger one input per request so the runs differ.
		w := st["1"]
		w.Edges[0].T += float64(i)
		st["1"] = w
		reqs[i] = c17Request(st, 40)
	}
	batch, err := c.SimulateBatch(ctx, client.BatchRequest{Circuit: up.ID, Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Reports) != len(reqs) {
		t.Fatalf("batch returned %d reports, want %d", len(batch.Reports), len(reqs))
	}
	for i, req := range reqs {
		single, err := c.Simulate(ctx, client.SimRequest{Circuit: up.ID, Request: req})
		if err != nil {
			t.Fatal(err)
		}
		if batch.Reports[i].Stats != single.Stats {
			t.Errorf("request %d: batch stats %+v != single stats %+v", i, batch.Reports[i].Stats, single.Stats)
		}
	}
}

// multBatch builds a batch of kernel-heavy, mutually distinct requests
// over the 4x4 multiplier (each runs for milliseconds, so jobs genuinely
// overlap in time when fanned out).
func multBatch(t *testing.T, jobs, vectors int) (netlistText string, reqs []client.Request) {
	t.Helper()
	mult, err := circuits.Multiplier(cellib.Default06(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := netfmt.WriteCircuit(&text, mult); err != nil {
		t.Fatal(err)
	}
	reqs = make([]client.Request, jobs)
	for i := range reqs {
		pairs := make([]stimuli.MultiplierPair, vectors)
		for v := range pairs {
			pairs[v] = stimuli.MultiplierPair{A: uint64((v*7 + i) % 16), B: uint64((v*13 + 3*i + 1) % 16)}
		}
		st, err := stimuli.MultiplierSequence(pairs, 4, 4, 5.0, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = client.Request{TEnd: float64(vectors)*5 + 10, Stimulus: api.FromSim(st)}
	}
	return text.String(), reqs
}

// TestServiceBatchFansOut pins the batch endpoint's parallel execution:
// with >= 4 workers, every job of a batch occupies its own queue slot and
// the jobs overlap on the worker pool (the in-flight high-water mark
// exceeds one) instead of draining sequentially through one worker slot.
// On multi-core hardware it additionally asserts the speedup ordering:
// the same batch on a 4-worker daemon beats a 1-worker daemon.
func TestServiceBatchFansOut(t *testing.T) {
	// The container CI runs on one CPU; four runnable threads still prove
	// overlap (the preempting scheduler interleaves the ms-scale jobs).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(4, runtime.NumCPU())))

	const jobs = 8
	text, reqs := multBatch(t, jobs, 250)
	ctx := context.Background()

	s, c := newTestService(t, service.Config{Workers: 4, QueueDepth: 64})
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: text, Format: "net"})
	if err != nil {
		t.Fatal(err)
	}

	executedBefore := s.QueueStats().Executed
	start := time.Now()
	batch, err := c.SimulateBatch(ctx, client.BatchRequest{Circuit: up.ID, Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	wall4 := time.Since(start)
	if len(batch.Reports) != jobs {
		t.Fatalf("batch returned %d reports, want %d", len(batch.Reports), jobs)
	}

	// resolve job + one job per request, every one through the queue. The
	// executed counter bumps after the job's result is delivered, so the
	// response can arrive a beat before the final increment — poll briefly.
	qs := s.QueueStats()
	for wait := time.Millisecond; qs.Executed-executedBefore < jobs+1 && wait < time.Second; wait *= 2 {
		time.Sleep(wait)
		qs = s.QueueStats()
	}
	if got := qs.Executed - executedBefore; got != jobs+1 {
		t.Errorf("batch executed %d queue jobs, want %d (1 resolve + %d runs)", got, jobs+1, jobs)
	}
	if qs.PeakInFlight < 2 {
		t.Errorf("peak in-flight = %d during a %d-job batch on 4 workers, want >= 2 (sequential execution?)", qs.PeakInFlight, jobs)
	}

	// Speedup ordering needs real parallel hardware to be a fair assertion.
	if runtime.NumCPU() >= 2 {
		s1, c1 := newTestService(t, service.Config{Workers: 1, QueueDepth: 64})
		up1, err := c1.UploadCircuit(ctx, client.UploadRequest{Netlist: text, Format: "net"})
		if err != nil {
			t.Fatal(err)
		}
		start = time.Now()
		if _, err := c1.SimulateBatch(ctx, client.BatchRequest{Circuit: up1.ID, Requests: reqs}); err != nil {
			t.Fatal(err)
		}
		wall1 := time.Since(start)
		_ = s1
		if wall4 >= wall1 {
			t.Errorf("speedup ordering violated: %v on 4 workers vs %v on 1 worker", wall4, wall1)
		}
	}
}

// TestServiceBatchReportsRootCause pins the failed-batch error choice:
// when one job fails on its own merits and its cancellation aborts
// sibling jobs, the response carries the root cause (typed, with its
// request index), not a sibling's secondary cancellation — whatever order
// the scheduler ran the jobs in.
func TestServiceBatchReportsRootCause(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(4, runtime.NumCPU())))
	_, c := newTestService(t, service.Config{Workers: 4, QueueDepth: 64})
	ctx := context.Background()

	text, reqs := multBatch(t, 3, 250) // three kernel-heavy valid jobs
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: text, Format: "net"})
	if err != nil {
		t.Fatal(err)
	}
	bad := client.Request{TEnd: 30, Waveforms: []string{"no_such_net"}, Stimulus: client.Stimulus{}}
	reqs = append(reqs, bad) // fails fast in Prepare while siblings run

	_, err = c.SimulateBatch(ctx, client.BatchRequest{Circuit: up.ID, Requests: reqs})
	if err == nil {
		t.Fatal("batch with an invalid request succeeded")
	}
	if !errors.Is(err, api.ErrInvalidRequest) {
		t.Fatalf("err = %v, want the root-cause ErrInvalidRequest (not a secondary cancellation)", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 {
		t.Fatalf("err = %v, want 422", err)
	}
	if !strings.Contains(apiErr.Message, "requests[3]") {
		t.Errorf("error %q does not name the failing request index", apiErr.Message)
	}
}

func TestServiceReturnOptions(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	req := c17Request(c17WireStimulus(), 30)
	req.Waveforms = []string{"22", "23"}
	req.Activity = true
	req.Power = true
	req.VCD = true
	res, err := c.Simulate(ctx, client.SimRequest{Netlist: netfmt.C17Bench(), Request: req})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Waveforms) != 2 {
		t.Errorf("waveforms = %d entries, want 2", len(res.Waveforms))
	}
	for name, wf := range res.Waveforms {
		if len(wf.Crossings) == 0 {
			t.Errorf("waveform %q has no crossings", name)
		}
	}
	if res.Activity == nil || res.Activity.Transitions == 0 {
		t.Errorf("activity missing or empty: %+v", res.Activity)
	}
	if res.Power == nil || res.Power.TotalEnergyFJ <= 0 {
		t.Errorf("power missing or empty: %+v", res.Power)
	}
	if !strings.Contains(res.VCD, "$enddefinitions") {
		t.Error("VCD payload missing header")
	}

	// Unknown waveform net is a typed client error, not a crash.
	bad := c17Request(c17WireStimulus(), 30)
	bad.Waveforms = []string{"no_such_net"}
	_, err = c.Simulate(ctx, client.SimRequest{Netlist: netfmt.C17Bench(), Request: bad})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 {
		t.Fatalf("unknown net: err = %v, want 422", err)
	}
	if !errors.Is(err, api.ErrInvalidRequest) {
		t.Fatalf("unknown net: err = %v, want ErrInvalidRequest", err)
	}
}

func TestServiceCircuitRegistry(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench", Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}

	list, err := c.Circuits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != up.ID {
		t.Fatalf("list = %+v, want the uploaded circuit", list)
	}
	info, err := c.Circuit(ctx, up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "c17" || len(info.Inputs) != 5 {
		t.Errorf("info = %+v", info)
	}

	if err := c.Evict(ctx, up.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Circuit(ctx, up.ID); err == nil {
		t.Fatal("circuit still present after evict")
	}
	if err := c.Evict(ctx, up.ID); !errors.Is(err, api.ErrCircuitNotFound) {
		t.Fatalf("double evict: err = %v, want ErrCircuitNotFound", err)
	}

	// Simulating against the evicted ID is a typed not-found, not a
	// recompile.
	_, err = c.Simulate(ctx, client.SimRequest{Circuit: up.ID, Request: c17Request(c17WireStimulus(), 30)})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 || !errors.Is(err, api.ErrCircuitNotFound) {
		t.Fatalf("simulate on evicted: err = %v, want 404 ErrCircuitNotFound", err)
	}
}

func TestServiceValidationErrors(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	cases := []client.SimRequest{
		{Request: client.Request{TEnd: 30}},                               // no target
		{Circuit: "x", Netlist: "y", Request: client.Request{TEnd: 30}},   // both targets
		{Circuit: "x", Request: client.Request{TEnd: 0}},                  // bad horizon
		{Circuit: "x", Request: client.Request{TEnd: 30, Model: "spice"}}, // bad model
	}
	for i, req := range cases {
		_, err := c.Simulate(ctx, req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
			t.Errorf("case %d: err = %v, want 400", i, err)
		}
		if !errors.Is(err, api.ErrInvalidRequest) {
			t.Errorf("case %d: err = %v, want ErrInvalidRequest", i, err)
		}
	}

	// Malformed netlist text is 422, typed invalid.
	_, err := c.Simulate(ctx, client.SimRequest{Netlist: "gate g BOGUS y a\n", Format: "net", Request: client.Request{TEnd: 30}})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 || !errors.Is(err, api.ErrInvalidRequest) {
		t.Fatalf("bad netlist: err = %v, want 422 ErrInvalidRequest", err)
	}
}

// TestServiceMaxEventsCap pins the server-side bound on the client's
// max_events knob: the operator's cap beats the request.
func TestServiceMaxEventsCap(t *testing.T) {
	_, c := newTestService(t, service.Config{MaxEvents: 10}) // c17 workload needs ~24
	ctx := context.Background()
	req := c17Request(c17WireStimulus(), 30)
	req.MaxEvents = 1 << 60
	_, err := c.Simulate(ctx, client.SimRequest{Netlist: netfmt.C17Bench(), Request: req})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 || !strings.Contains(apiErr.Message, "event limit") {
		t.Fatalf("capped run: err = %v, want 422 event-limit error", err)
	}
}

// TestServiceTimeoutCapAppliesToHugeTimeouts pins the overflow behavior of
// per-request timeouts: a timeout_ms too large for time.Duration must not
// defeat the operator's MaxTimeout cap.
func TestServiceTimeoutCapAppliesToHugeTimeouts(t *testing.T) {
	_, c := newTestService(t, service.Config{MaxTimeout: time.Nanosecond})
	ctx := context.Background()
	req := c17Request(c17WireStimulus(), 30)
	req.TimeoutMs = 1e13
	_, err := c.Simulate(ctx, client.SimRequest{Netlist: netfmt.C17Bench(), Request: req})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 504 {
		t.Fatalf("huge timeout_ms under 1ns MaxTimeout: err = %v, want 504", err)
	}
	if !errors.Is(err, api.ErrCanceled) {
		t.Fatalf("timed-out run: err = %v, want ErrCanceled", err)
	}
}

func TestServiceHealthAndMetrics(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	req := client.SimRequest{Netlist: netfmt.C17Bench(), Request: c17Request(c17WireStimulus(), 30)}
	for i := 0; i < 2; i++ { // second request exercises the result cache
		if _, err := c.Simulate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Circuits != 1 {
		t.Errorf("health = %+v", h)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"halotisd_requests_total{endpoint=\"simulate\"} 2",
		"halotisd_sim_runs_total 1",
		"halotisd_cache_compiles_total 1",
		"halotisd_cache_entries 1",
		"halotisd_result_cache_hits_total 1",
		"halotisd_result_cache_misses_total 1",
		"halotisd_result_cache_entries 1",
		"halotisd_queue_workers",
		"halotisd_queue_peak_in_flight",
		"halotisd_sim_events_per_second",
	} {
		if !strings.Contains(m, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestServiceConcurrentTrafficAndDrain hammers the service from many
// goroutines, then closes it and requires a clean drain: every accepted
// request completed, and the engines created stay bounded by the pools.
func TestServiceConcurrentTrafficAndDrain(t *testing.T) {
	s, c := newTestService(t, service.Config{Workers: 4, QueueDepth: 64, EnginePoolSize: 4})
	ctx := context.Background()
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench"})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 8, 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []error
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Distinct stimuli keep the kernel busy (the result cache
				// would otherwise absorb the load).
				st := c17WireStimulus()
				w := st["1"]
				w.Edges[0].T += 0.001 * float64(g*perClient+i)
				st["1"] = w
				_, err := c.Simulate(ctx, client.SimRequest{Circuit: up.ID, Request: c17Request(st, 30)})
				if err != nil {
					if errors.Is(err, api.ErrOverloaded) {
						continue // backpressure is an acceptable answer
					}
					mu.Lock()
					failures = append(failures, err)
					mu.Unlock()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("concurrent traffic failed: %v", failures[0])
	}

	cs := s.CacheStats()
	if cs.Compiles != 1 {
		t.Errorf("concurrent traffic compiled %d times, want 1", cs.Compiles)
	}
	if cs.EnginesCreated > 8 {
		t.Errorf("created %d engines for 4 workers (pool size 4), want <= 8", cs.EnginesCreated)
	}

	// Graceful shutdown: Close drains and returns; afterwards the queue
	// rejects with ErrClosed semantics (503 via HTTP, tested at the queue
	// level in queue_test.go).
	s.Close()
	qs := s.QueueStats()
	if qs.Depth != 0 {
		t.Errorf("queue depth %d after Close, want 0 (drained)", qs.Depth)
	}
}
