package service_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"halotis/client"
	"halotis/internal/cellib"
	"halotis/internal/netfmt"
	"halotis/internal/service"
	"halotis/internal/sim"
)

// newTestService spins up a service over httptest and returns the server
// internals plus a typed client.
func newTestService(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, client.New(ts.URL)
}

// c17WireStimulus drives the c17 inputs on the wire types.
func c17WireStimulus() client.Stimulus {
	st := client.Stimulus{}
	for i, in := range []string{"1", "2", "3", "6", "7"} {
		st[in] = client.InputWave{Edges: []client.Edge{
			{T: 2 + float64(i), Rising: true, Slew: 0.2},
			{T: 12 + float64(i), Rising: false, Slew: 0.2},
		}}
	}
	return st
}

// TestServiceRoundTrip is the acceptance path: upload a .bench circuit
// once, run N simulations against its ID, and require that no
// recompilation happened on the hits and that every result is bit-identical
// to the in-process engine.
func TestServiceRoundTrip(t *testing.T) {
	s, c := newTestService(t, service.Config{})
	ctx := context.Background()

	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench", Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	if up.Cached {
		t.Error("first upload reported cached")
	}
	if up.Gates != 6 {
		t.Errorf("c17 gates = %d, want 6", up.Gates)
	}

	// Reference: the same workload through the in-process engine.
	lib := cellib.Default06()
	ckt, err := netfmt.ParseBench(strings.NewReader(netfmt.C17Bench()), lib)
	if err != nil {
		t.Fatal(err)
	}
	wire := c17WireStimulus()
	ref, err := sim.New(ckt, sim.Options{}).Run(service.Stimulus(wire).ToSim(), 30)
	if err != nil {
		t.Fatal(err)
	}

	const n = 20
	for i := 0; i < n; i++ {
		res, err := c.Simulate(ctx, client.SimRequest{
			Circuit:  up.ID,
			RunSpec:  client.RunSpec{TEnd: 30},
			Stimulus: wire,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.EventsProcessed != ref.Stats.EventsProcessed ||
			res.Stats.Transitions != ref.Stats.Transitions ||
			res.Stats.EventsFiltered != ref.Stats.EventsFiltered {
			t.Fatalf("run %d diverged from in-process engine: %+v vs %+v", i, res.Stats, ref.Stats)
		}
		for name, want := range ref.OutputLogic(30, lib.VDD/2) {
			if got := res.Outputs[name]; got != want {
				t.Fatalf("run %d output %q = %v, want %v", i, name, got, want)
			}
		}
	}

	// Recompilation avoided on hits: exactly one compile for upload + N runs.
	cs := s.CacheStats()
	if cs.Compiles != 1 {
		t.Errorf("compiles = %d after upload + %d runs, want 1", cs.Compiles, n)
	}
	if rate := cs.HitRate(); rate <= 0.9 {
		t.Errorf("cache hit rate = %.3f, want > 0.9", rate)
	}
}

func TestServiceInlineNetlistAndModels(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	for _, model := range []string{"ddm", "cdm"} {
		res, err := c.Simulate(ctx, client.SimRequest{
			Netlist:  netfmt.C17Bench(),
			Format:   "auto",
			RunSpec:  client.RunSpec{TEnd: 30, Model: model},
			Stimulus: c17WireStimulus(),
		})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if res.Model != model {
			t.Errorf("model = %q, want %q", res.Model, model)
		}
		if res.Stats.EventsProcessed == 0 {
			t.Errorf("%s: no events processed", model)
		}
	}
}

func TestServiceBatchMatchesSingles(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench"})
	if err != nil {
		t.Fatal(err)
	}

	stimuli := make([]client.Stimulus, 6)
	for i := range stimuli {
		st := c17WireStimulus()
		// Stagger one input per stimulus so the runs differ.
		w := st["1"]
		w.Edges[0].T += float64(i)
		st["1"] = w
		stimuli[i] = st
	}
	batch, err := c.SimulateBatch(ctx, client.BatchRequest{
		Circuit: up.ID,
		RunSpec: client.RunSpec{TEnd: 40},
		Stimuli: stimuli,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(stimuli) {
		t.Fatalf("batch returned %d results, want %d", len(batch.Results), len(stimuli))
	}
	for i, st := range stimuli {
		single, err := c.Simulate(ctx, client.SimRequest{Circuit: up.ID, RunSpec: client.RunSpec{TEnd: 40}, Stimulus: st})
		if err != nil {
			t.Fatal(err)
		}
		if batch.Results[i].Stats != single.Stats {
			t.Errorf("stimulus %d: batch stats %+v != single stats %+v", i, batch.Results[i].Stats, single.Stats)
		}
	}
}

func TestServiceReturnOptions(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	res, err := c.Simulate(ctx, client.SimRequest{
		Netlist: netfmt.C17Bench(),
		RunSpec: client.RunSpec{
			TEnd:      30,
			Waveforms: []string{"22", "23"},
			Activity:  true,
			Power:     true,
			VCD:       true,
		},
		Stimulus: c17WireStimulus(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Waveforms) != 2 {
		t.Errorf("waveforms = %d entries, want 2", len(res.Waveforms))
	}
	if res.Activity == nil || res.Activity.Transitions == 0 {
		t.Errorf("activity missing or empty: %+v", res.Activity)
	}
	if res.Power == nil || res.Power.TotalEnergyFJ <= 0 {
		t.Errorf("power missing or empty: %+v", res.Power)
	}
	if !strings.Contains(res.VCD, "$enddefinitions") {
		t.Error("VCD payload missing header")
	}

	// Unknown waveform net is a client error, not a crash.
	_, err = c.Simulate(ctx, client.SimRequest{
		Netlist:  netfmt.C17Bench(),
		RunSpec:  client.RunSpec{TEnd: 30, Waveforms: []string{"no_such_net"}},
		Stimulus: c17WireStimulus(),
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 {
		t.Fatalf("unknown net: err = %v, want 422", err)
	}
}

func TestServiceCircuitRegistry(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench", Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}

	list, err := c.Circuits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != up.ID {
		t.Fatalf("list = %+v, want the uploaded circuit", list)
	}
	info, err := c.Circuit(ctx, up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "c17" || len(info.Inputs) != 5 {
		t.Errorf("info = %+v", info)
	}

	if err := c.Evict(ctx, up.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Circuit(ctx, up.ID); err == nil {
		t.Fatal("circuit still present after evict")
	}
	var apiErr *client.APIError
	if err := c.Evict(ctx, up.ID); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("double evict: err = %v, want 404", err)
	}

	// Simulating against the evicted ID is a 404, not a recompile.
	_, err = c.Simulate(ctx, client.SimRequest{Circuit: up.ID, RunSpec: client.RunSpec{TEnd: 30}, Stimulus: c17WireStimulus()})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("simulate on evicted: err = %v, want 404", err)
	}
}

func TestServiceValidationErrors(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	cases := []client.SimRequest{
		{RunSpec: client.RunSpec{TEnd: 30}},                               // no target
		{Circuit: "x", Netlist: "y", RunSpec: client.RunSpec{TEnd: 30}},   // both targets
		{Circuit: "x", RunSpec: client.RunSpec{TEnd: 0}},                  // bad horizon
		{Circuit: "x", RunSpec: client.RunSpec{TEnd: 30, Model: "spice"}}, // bad model
	}
	for i, req := range cases {
		_, err := c.Simulate(ctx, req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
			t.Errorf("case %d: err = %v, want 400", i, err)
		}
	}

	// Malformed netlist text is 422.
	_, err := c.Simulate(ctx, client.SimRequest{Netlist: "gate g BOGUS y a\n", Format: "net", RunSpec: client.RunSpec{TEnd: 30}})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 {
		t.Fatalf("bad netlist: err = %v, want 422", err)
	}
}

// TestServiceMaxEventsCap pins the server-side bound on the client's
// max_events knob: the operator's cap beats the request.
func TestServiceMaxEventsCap(t *testing.T) {
	_, c := newTestService(t, service.Config{MaxEvents: 10}) // c17 workload needs ~24
	ctx := context.Background()
	_, err := c.Simulate(ctx, client.SimRequest{
		Netlist:  netfmt.C17Bench(),
		RunSpec:  client.RunSpec{TEnd: 30, MaxEvents: 1 << 60},
		Stimulus: c17WireStimulus(),
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 || !strings.Contains(apiErr.Message, "event limit") {
		t.Fatalf("capped run: err = %v, want 422 event-limit error", err)
	}
}

// TestServiceTimeoutCapAppliesToHugeTimeouts pins the overflow behavior of
// per-request timeouts: a timeout_ms too large for time.Duration must not
// defeat the operator's MaxTimeout cap.
func TestServiceTimeoutCapAppliesToHugeTimeouts(t *testing.T) {
	_, c := newTestService(t, service.Config{MaxTimeout: time.Nanosecond})
	ctx := context.Background()
	_, err := c.Simulate(ctx, client.SimRequest{
		Netlist:  netfmt.C17Bench(),
		RunSpec:  client.RunSpec{TEnd: 30, TimeoutMs: 1e13},
		Stimulus: c17WireStimulus(),
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 504 {
		t.Fatalf("huge timeout_ms under 1ns MaxTimeout: err = %v, want 504", err)
	}
}

func TestServiceHealthAndMetrics(t *testing.T) {
	_, c := newTestService(t, service.Config{})
	ctx := context.Background()
	if _, err := c.Simulate(ctx, client.SimRequest{
		Netlist: netfmt.C17Bench(), RunSpec: client.RunSpec{TEnd: 30}, Stimulus: c17WireStimulus(),
	}); err != nil {
		t.Fatal(err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Circuits != 1 {
		t.Errorf("health = %+v", h)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"halotisd_requests_total{endpoint=\"simulate\"} 1",
		"halotisd_sim_runs_total 1",
		"halotisd_cache_compiles_total 1",
		"halotisd_cache_entries 1",
		"halotisd_queue_workers",
		"halotisd_sim_events_per_second",
	} {
		if !strings.Contains(m, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestServiceConcurrentTrafficAndDrain hammers the service from many
// goroutines, then closes it and requires a clean drain: every accepted
// request completed, and the engines created stay bounded by the pools.
func TestServiceConcurrentTrafficAndDrain(t *testing.T) {
	s, c := newTestService(t, service.Config{Workers: 4, QueueDepth: 64, EnginePoolSize: 4})
	ctx := context.Background()
	up, err := c.UploadCircuit(ctx, client.UploadRequest{Netlist: netfmt.C17Bench(), Format: "bench"})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 8, 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []error
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				_, err := c.Simulate(ctx, client.SimRequest{
					Circuit: up.ID, RunSpec: client.RunSpec{TEnd: 30}, Stimulus: c17WireStimulus(),
				})
				if err != nil {
					var apiErr *client.APIError
					if errors.As(err, &apiErr) && apiErr.StatusCode == 503 {
						continue // backpressure is an acceptable answer
					}
					mu.Lock()
					failures = append(failures, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("concurrent traffic failed: %v", failures[0])
	}

	cs := s.CacheStats()
	if cs.Compiles != 1 {
		t.Errorf("concurrent traffic compiled %d times, want 1", cs.Compiles)
	}
	if cs.EnginesCreated > 8 {
		t.Errorf("created %d engines for 4 workers (pool size 4), want <= 8", cs.EnginesCreated)
	}

	// Graceful shutdown: Close drains and returns; afterwards the queue
	// rejects with ErrClosed semantics (503 via HTTP, tested at the queue
	// level in queue_test.go).
	s.Close()
	qs := s.QueueStats()
	if qs.Depth != 0 {
		t.Errorf("queue depth %d after Close, want 0 (drained)", qs.Depth)
	}
}
