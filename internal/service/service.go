// Package service is the simulation-as-a-service layer: a long-running
// HTTP/JSON front end over the compiled-IR simulation kernel, built so that
// steady-state traffic hits the zero-allocation engine-reuse path the
// in-process API already provides. Its wire types are the shared
// request/report surface of halotis/api — the same structs the Local
// backend and the typed client consume — and its errors carry the api
// error-taxonomy codes, so remote callers get errors.Is-matchable
// failures.
//
// Four mechanisms carry the load:
//
//   - A content-addressed LRU circuit cache (cache.go): uploaded netlists
//     are parsed once, compiled once (circ.Compile) and keyed by the stable
//     content hash of the parsed circuit plus library identity, so
//     re-uploads — including whitespace-equivalent variants of the same
//     .bench file — and every subsequent simulate-by-ID request skip
//     recompilation. Concurrent uploads of the same text are collapsed to
//     one compile (singleflight).
//
//   - A bounded LRU result cache (resultcache.go): finished reports keyed
//     by (circuit content hash, stimulus content hash, options
//     fingerprint). Simulation is a pure function of that key, so a
//     repeated identical request is answered without a kernel run.
//
//   - Per-(circuit, options) engine pools (sim.EnginePool, shared with the
//     Local backend): each cached circuit keeps warm sim.Engine instances
//     per delay-model configuration; repeated requests acquire a warmed
//     engine, run with zero steady-state heap allocations, and return it.
//
//   - A bounded job queue with a configurable worker pool (queue.go): all
//     compile and simulation work is admitted through it, so concurrency is
//     capped, overload surfaces as fast 503s instead of collapse, and
//     shutdown drains in-flight jobs. Batch requests fan their jobs out
//     across the queue (one admission, N parallel jobs) instead of
//     pinning one worker for the whole batch.
//
// Endpoints (see server.go): POST /v1/circuits (upload+compile), GET
// /v1/circuits[/{id}] (list/inspect), DELETE /v1/circuits/{id} (evict),
// POST /v1/simulate and /v1/simulate/batch (run; waveforms, activity,
// power, VCD on request), GET /v1/traces[/{id}] (recorded request traces),
// GET /v1/status (SLO burn-rate rollup), GET /v1/series (in-process
// time-series), GET /v1/flightrecorder (anomaly flight recorder), GET
// /healthz and GET /metrics.
package service

import (
	"log/slog"
	"runtime"
	"time"

	"halotis/internal/cellib"
	"halotis/internal/obs"
	"halotis/internal/obs/flight"
	"halotis/internal/obs/tsdb"
)

// Config parameterizes a Server. The zero value is usable: every field has
// a production-minded default.
type Config struct {
	// Lib is the cell library circuits are elaborated onto. Default: the
	// 0.6 µm library (cellib.Default06).
	Lib *cellib.Library
	// ReplicaID is the daemon's identity within a cluster (halotisd -id).
	// When set, responses carry it (CircuitInfo.Replica, Report.Replica,
	// ErrorResponse.Replica, HealthResponse.Replica) and /metrics labels
	// halotisd_build_info with it, so multi-node sweeps can attribute
	// work per node. Empty (the default) omits it everywhere.
	ReplicaID string
	// Workers is the simulation/compile worker count. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued-but-unstarted jobs; submits
	// beyond it fail fast with 503. Default: 4x Workers.
	QueueDepth int
	// CacheSize bounds the compiled-circuit cache (LRU eviction).
	// Default 64.
	CacheSize int
	// ResultCacheSize bounds the result cache: finished reports keyed by
	// (circuit hash, stimulus hash, options fingerprint), so repeating an
	// identical simulate request is answered without a kernel run.
	// Default 1024; negative disables result caching.
	ResultCacheSize int
	// EnginePoolSize bounds the free engines retained per (circuit,
	// options) pool. Default: Workers.
	EnginePoolSize int
	// MaxBodyBytes bounds request bodies. Default 8 MiB.
	MaxBodyBytes int64
	// MaxTimeout is the ceiling on any single request's run time: it caps
	// client-supplied timeout_ms and applies as the deadline when a
	// request omits one, so no request can pin a worker longer than the
	// operator allows. 0 means uncapped.
	MaxTimeout time.Duration
	// MaxEvents caps the per-request max_events clients may ask for (the
	// kernel's oscillation guard, i.e. the bound on how long one request
	// can pin a worker); 0 means uncapped beyond the engine default.
	MaxEvents uint64
	// Logger receives the server's structured request and error logs,
	// stamped with trace IDs when the request was traced. Default: a
	// discard logger, so embedding the service costs no log formatting
	// unless the operator opts in (halotisd -log-level/-log-format).
	Logger *slog.Logger
	// TraceCapacity bounds the in-memory trace ring served by GET
	// /v1/traces: the newest TraceCapacity traces are retained. Default
	// obs.DefaultTraceCapacity (256).
	TraceCapacity int
	// SLOTargetP99 is the latency objective: API requests slower than it
	// count against the error budget in /v1/status burn rates (halotisd
	// -slo-p99-ms). Default 500ms.
	SLOTargetP99 time.Duration
	// SLOTargetAvailability is the availability objective in (0, 1): the
	// target fraction of API requests that are neither server errors nor
	// slower than SLOTargetP99 (halotisd -slo-availability). Default 0.999.
	SLOTargetAvailability float64
	// SeriesResolution is the window size of the in-process time-series
	// ring served by GET /v1/series. Default tsdb.DefaultResolution (10s).
	SeriesResolution time.Duration
	// SeriesWindows is the ring's window count (SeriesResolution ×
	// SeriesWindows of history). Default tsdb.DefaultWindows (360, one
	// hour at the default resolution); negative disables the sampler and
	// the series/status endpoints it feeds.
	SeriesWindows int
	// FlightCapacity bounds the flight-recorder ring served by GET
	// /v1/flightrecorder. Default flight.DefaultCapacity (4096); negative
	// disables flight recording and the self-tracing it performs.
	FlightCapacity int
}

func (c *Config) setDefaults() {
	if c.Lib == nil {
		c.Lib = cellib.Default06()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	switch {
	case c.ResultCacheSize == 0:
		c.ResultCacheSize = 1024
	case c.ResultCacheSize < 0:
		c.ResultCacheSize = 0 // disabled
	}
	if c.EnginePoolSize <= 0 {
		c.EnginePoolSize = c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = obs.DefaultTraceCapacity
	}
	if c.SLOTargetP99 <= 0 {
		c.SLOTargetP99 = 500 * time.Millisecond
	}
	if c.SLOTargetAvailability <= 0 || c.SLOTargetAvailability >= 1 {
		c.SLOTargetAvailability = 0.999
	}
	if c.SeriesResolution <= 0 {
		c.SeriesResolution = tsdb.DefaultResolution
	}
	switch {
	case c.SeriesWindows == 0:
		c.SeriesWindows = tsdb.DefaultWindows
	case c.SeriesWindows < 0:
		c.SeriesWindows = 0 // disabled
	}
	switch {
	case c.FlightCapacity == 0:
		c.FlightCapacity = flight.DefaultCapacity
	case c.FlightCapacity < 0:
		c.FlightCapacity = 0 // disabled
	}
}
