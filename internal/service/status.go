package service

// The node-local fleet-health surface: a sampler goroutine snapshots the
// daemon's counters and histograms into the in-process time-series ring
// every SeriesResolution, the route wrapper files every API request into
// the flight recorder (promoting anomalies to pinned trace exemplars),
// and three endpoints serve the results — GET /v1/series (history), GET
// /v1/flightrecorder (recent requests + exemplars), GET /v1/status (SLO
// burn rates). Recording is always cheap (atomics on the request path,
// one locked ring write per request); detail is paid for only on
// anomalies, which pin their span trees in the trace ring.

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"halotis/api"
	"halotis/internal/obs"
	"halotis/internal/obs/flight"
)

// Time-series metric names the sampler writes. Gauges are per-window
// last-writes, the rest are per-window sums fed by tick deltas.
const (
	seriesRequestsPerSec = "requests_per_second"
	seriesErrorsPerSec   = "errors_per_second"
	seriesShedPerSec     = "deadline_shed_per_second"
	seriesEventsPerSec   = "kernel_events_per_second"
	seriesQueueDepth     = "queue_depth"
	seriesDrainMs        = "queue_drain_estimate_ms"
	seriesCacheHitRate   = "cache_hit_rate"
	seriesResultHitRate  = "result_cache_hit_rate"
	seriesSimP50Ms       = "simulate_p50_ms"
	seriesSimP99Ms       = "simulate_p99_ms"
	seriesTracesPinned   = "traces_pinned"
	seriesSLORequests    = "slo_requests"
	seriesSLOBad         = "slo_bad"
)

// apiRoute reports whether the endpoint counts against the SLO and is
// flight-recorded: the request-serving API, not the introspection surface
// (health probes and metric scrapes would otherwise dominate both).
func apiRoute(r routeID) bool {
	switch r {
	case routeUpload, routeCircuits, routeSimulate, routeBatch:
		return true
	}
	return false
}

// flightPath mirrors apiRoute for the tracing middleware, which sees the
// URL before the mux resolves a route.
func flightPath(p string) bool {
	return strings.HasPrefix(p, "/v1/simulate") || strings.HasPrefix(p, "/v1/circuits")
}

// minSlowThreshold floors the p99-derived promotion threshold so a
// cache-hit-dominated window (p99 in microseconds) cannot promote every
// request that misses the cache.
const minSlowThreshold = time.Millisecond

// observe files one finished API request: SLO accounting, the flight
// record, and anomaly promotion. Called by the route wrapper after the
// handler returns, so the request's Note (filled by the handler interior)
// is complete.
func (s *Server) observe(rid routeID, req *http.Request, status int, d time.Duration) {
	if !apiRoute(rid) {
		return
	}
	bad := status >= 500 || d > s.cfg.SLOTargetP99
	s.sloTotal.Add(1)
	if bad {
		s.sloBad.Add(1)
	}
	if s.flight == nil {
		return
	}

	var flags flight.Flags
	rec := flight.Record{
		//halotis:wallclock flight records are stamped with arrival wall time for the operator timeline
		UnixNano:  time.Now().Add(-d).UnixNano(),
		Route:     routeNames[rid],
		Replica:   s.cfg.ReplicaID,
		Status:    status,
		LatencyNs: d.Nanoseconds(),
	}
	if n := flight.NoteFrom(req.Context()); n != nil {
		if n.Cached {
			flags |= flight.FlagCached
		}
		if n.Hedged {
			flags |= flight.FlagHedged
		}
		if n.Degraded {
			flags |= flight.FlagDegraded
		}
		if n.Partial {
			flags |= flight.FlagPartial
		}
		rec.QueueWaitNs = n.QueueWaitNs
		rec.KernelEvents = n.KernelEvents
		rec.Code = n.Code
	}
	if status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout {
		flags |= flight.FlagShed
	}
	if status >= 500 {
		flags |= flight.FlagFailed
	}
	if thr := s.slowNs[rid].Load(); thr > 0 && d.Nanoseconds() > thr {
		flags |= flight.FlagSlow
	}
	rec.TraceID, _ = obs.ContextTraceAny(req.Context())
	const anomalous = flight.FlagHedged | flight.FlagDegraded | flight.FlagPartial |
		flight.FlagShed | flight.FlagFailed | flight.FlagSlow
	if flags&anomalous != 0 {
		flags |= flight.FlagPinned
		s.traces.Pin(rec.TraceID)
	}
	rec.Flags = flags
	s.flight.Put(rec)
}

// drainEstimate predicts how long the current queue needs to drain at the
// observed service rate: average kernel-run wall time × queue depth ÷
// workers, floored at one average run (a full pool still finishes the
// in-flight work). Before any run completes, a conservative prior stands
// in. This is what 503s stamp into Retry-After and /v1/status exposes.
func (s *Server) drainEstimate() time.Duration {
	avg := 25 * time.Millisecond // prior before the first completed run
	if runs := s.met.simRuns.Load(); runs > 0 {
		avg = time.Duration(s.met.simBusyNs.Load() / int64(runs))
		if avg < time.Millisecond {
			avg = time.Millisecond
		}
	}
	qs := s.queue.Stats()
	workers := qs.Workers
	if workers <= 0 {
		workers = 1
	}
	est := avg * time.Duration(qs.Depth+1) / time.Duration(workers)
	if est < avg {
		est = avg
	}
	return est
}

// retryAfterHint clamps a drain estimate to the wire contract's hint
// range: at least 1s (clients must not hammer a refusing daemon
// sub-second) and at most 60s. /v1/status carries the unclamped estimate.
func retryAfterHint(est time.Duration) time.Duration {
	if est < time.Second {
		return time.Second
	}
	if est > time.Minute {
		return time.Minute
	}
	return est
}

// retryAfterHeader renders a hint as the Retry-After header's integer
// seconds, rounded up.
func retryAfterHeader(est time.Duration) string {
	est = retryAfterHint(est)
	return strconv.FormatInt(int64((est+time.Second-1)/time.Second), 10)
}

// samplerState carries the previous tick's counter values so each tick
// writes exact deltas.
type samplerState struct {
	requests uint64
	errors   uint64
	shed     uint64
	events   uint64
	sloTotal uint64
	sloBad   uint64
	latency  [routeCount]obs.HistogramSnapshot
}

func (s *Server) samplerInit() (st samplerState) {
	for r := routeID(0); r < routeCount; r++ {
		st.requests += s.met.requests[r].Load()
		st.latency[r] = s.met.latency[r].Snapshot()
	}
	st.errors = s.met.httpErrors.Load()
	st.shed = s.met.deadlineShed.Load()
	st.events = s.met.simEvents.Load()
	st.sloTotal = s.sloTotal.Load()
	st.sloBad = s.sloBad.Load()
	return st
}

// runSampler is the periodic snapshot loop feeding the time-series ring;
// one goroutine per server, stopped by Close.
func (s *Server) runSampler() {
	defer close(s.samplerDone)
	tick := time.NewTicker(s.cfg.SeriesResolution)
	defer tick.Stop()
	prev := s.samplerInit()
	// Seed the ring immediately so /v1/series lists every metric from the
	// first request on, instead of 404-shaped emptiness until the first tick.
	prev = s.sampleOnce(prev)
	for {
		select {
		case <-s.samplerStop:
			return
		case <-tick.C:
			prev = s.sampleOnce(prev)
		}
	}
}

// sampleOnce takes one snapshot tick: per-second rates from counter
// deltas, point-in-time gauges, latency quantiles of the delta
// distribution, SLO window sums, and the per-endpoint slow-promotion
// threshold refresh.
func (s *Server) sampleOnce(prev samplerState) samplerState {
	now := time.Now()
	secs := s.cfg.SeriesResolution.Seconds()
	cur := s.samplerInit()

	s.db.Set(now, seriesRequestsPerSec, float64(cur.requests-prev.requests)/secs)
	s.db.Set(now, seriesErrorsPerSec, float64(cur.errors-prev.errors)/secs)
	s.db.Set(now, seriesShedPerSec, float64(cur.shed-prev.shed)/secs)
	s.db.Set(now, seriesEventsPerSec, float64(cur.events-prev.events)/secs)
	s.db.Set(now, seriesQueueDepth, float64(s.queue.Depth()))
	s.db.Set(now, seriesDrainMs, float64(s.drainEstimate())/float64(time.Millisecond))
	s.db.Set(now, seriesCacheHitRate, s.cache.Stats().HitRate())
	s.db.Set(now, seriesResultHitRate, s.results.Stats().HitRate())
	s.db.Set(now, seriesTracesPinned, float64(len(s.traces.Pinned())))
	s.db.Add(now, seriesSLORequests, float64(cur.sloTotal-prev.sloTotal))
	s.db.Add(now, seriesSLOBad, float64(cur.sloBad-prev.sloBad))
	s.sampledTotal.Store(cur.sloTotal)
	s.sampledBad.Store(cur.sloBad)

	simDelta := cur.latency[routeSimulate].Sub(prev.latency[routeSimulate])
	if simDelta.Count() > 0 {
		s.db.Set(now, seriesSimP50Ms, simDelta.Quantile(0.50)*1e3)
		s.db.Set(now, seriesSimP99Ms, simDelta.Quantile(0.99)*1e3)
	}

	// Refresh the per-endpoint promotion threshold: twice the recent p99,
	// floored, and never above the SLO target (a request breaching the SLO
	// is always anomalous). Windows with too few samples keep the previous
	// threshold — quantiles of a handful of requests are noise.
	const minSamples = 16
	for r := routeID(0); r < routeCount; r++ {
		if !apiRoute(r) {
			continue
		}
		delta := cur.latency[r].Sub(prev.latency[r])
		if delta.Count() < minSamples {
			continue
		}
		thr := time.Duration(2 * delta.Quantile(0.99) * float64(time.Second))
		if thr < minSlowThreshold {
			thr = minSlowThreshold
		}
		if thr > s.cfg.SLOTargetP99 {
			thr = s.cfg.SLOTargetP99
		}
		s.slowNs[r].Store(thr.Nanoseconds())
	}
	return cur
}

// sloWindows evaluates the burn rate over the fast (30 windows) and slow
// (full ring) horizons. The unsampled remainder — requests observed since
// the last tick — is folded into both, so a breach surfaces on the next
// status read, not the next tick.
func (s *Server) sloWindows() []api.SLOWindow {
	fast := 30 * s.cfg.SeriesResolution
	if span := s.db.Span(); fast > span {
		fast = span
	}
	liveTotal := float64(s.sloTotal.Load() - s.sampledTotal.Load())
	liveBad := float64(s.sloBad.Load() - s.sampledBad.Load())
	budget := 1 - s.cfg.SLOTargetAvailability
	mk := func(name string, w time.Duration) api.SLOWindow {
		req := s.db.Sum(seriesSLORequests, w) + liveTotal
		bad := s.db.Sum(seriesSLOBad, w) + liveBad
		win := api.SLOWindow{Name: name, WindowMs: w.Milliseconds(), Requests: req, BadRequests: bad, Availability: 1}
		if req > 0 {
			win.Availability = 1 - bad/req
			win.BurnRate = (1 - win.Availability) / budget
			win.Firing = win.BurnRate >= 1
		}
		return win
	}
	return []api.SLOWindow{mk("fast", fast), mk("slow", s.db.Span())}
}

func statusOf(windows []api.SLOWindow) string {
	firing := 0
	for _, w := range windows {
		if w.Firing {
			firing++
		}
	}
	switch {
	case firing == len(windows) && firing > 0:
		return "firing"
	case firing > 0:
		return "warn"
	}
	return "ok"
}

// --- handlers ---

//halotis:noctx renders in-memory rings and counters; no downstream work
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		s.writeError(w, r, http.StatusNotFound, api.NotFoundf("time-series sampling disabled on this node"))
		return
	}
	windows := s.sloWindows()
	resp := api.StatusResponse{
		Status:        statusOf(windows),
		Node:          s.cfg.ReplicaID,
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		SLO: api.SLOConfig{
			TargetP99Ms:        float64(s.cfg.SLOTargetP99) / float64(time.Millisecond),
			TargetAvailability: s.cfg.SLOTargetAvailability,
		},
		Windows:              windows,
		QueueDepth:           s.queue.Depth(),
		QueueDrainEstimateMs: float64(s.drainEstimate()) / float64(time.Millisecond),
	}
	if p, ok := s.db.Latest(seriesRequestsPerSec); ok {
		resp.RequestsPerSecond = p.Value
	}
	if p, ok := s.db.Latest(seriesErrorsPerSec); ok {
		resp.ErrorsPerSecond = p.Value
	}
	if p, ok := s.db.Latest(seriesSimP50Ms); ok {
		resp.P50Ms = p.Value
	}
	if p, ok := s.db.Latest(seriesSimP99Ms); ok {
		resp.P99Ms = p.Value
	}
	pinned := s.traces.Pinned()
	resp.TracesPinned = len(pinned)
	if len(pinned) > 8 {
		pinned = pinned[:8]
	}
	resp.Exemplars = pinned
	s.writeJSON(w, http.StatusOK, resp)
}

// parseWindow accepts a Go duration string ("5m") or integer seconds.
func parseWindow(q string) time.Duration {
	if q == "" {
		return 0
	}
	if d, err := time.ParseDuration(q); err == nil && d > 0 {
		return d
	}
	if secs, err := strconv.Atoi(q); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

//halotis:noctx renders the in-memory series ring; no downstream work
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		s.writeError(w, r, http.StatusNotFound, api.NotFoundf("time-series sampling disabled on this node"))
		return
	}
	resp := api.SeriesResponse{Node: s.cfg.ReplicaID, ResolutionMs: s.db.Resolution().Milliseconds()}
	metric := r.URL.Query().Get("metric")
	if metric == "" {
		resp.Metrics = s.db.Names()
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Metric = metric
	pts := s.db.Query(metric, parseWindow(r.URL.Query().Get("window")))
	resp.Points = make([]api.SeriesPoint, len(pts))
	for i, p := range pts {
		resp.Points[i] = api.SeriesPoint{UnixMs: p.UnixMs, Value: p.Value}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// flightWire converts an in-memory flight record to its JSON shape.
func flightWire(rec flight.Record) api.FlightRecord {
	return api.FlightRecord{
		UnixMs:       rec.UnixNano / int64(time.Millisecond),
		TraceID:      rec.TraceID,
		Route:        rec.Route,
		Replica:      rec.Replica,
		StatusCode:   rec.Status,
		Code:         rec.Code,
		LatencyMs:    float64(rec.LatencyNs) / float64(time.Millisecond),
		QueueWaitMs:  float64(rec.QueueWaitNs) / float64(time.Millisecond),
		KernelEvents: rec.KernelEvents,
		Cached:       rec.Flags.Has(flight.FlagCached),
		Hedged:       rec.Flags.Has(flight.FlagHedged),
		Degraded:     rec.Flags.Has(flight.FlagDegraded),
		Partial:      rec.Flags.Has(flight.FlagPartial),
		Shed:         rec.Flags.Has(flight.FlagShed),
		Failed:       rec.Flags.Has(flight.FlagFailed),
		Slow:         rec.Flags.Has(flight.FlagSlow),
		Pinned:       rec.Flags.Has(flight.FlagPinned),
	}
}

//halotis:noctx renders the in-memory flight ring; no downstream work
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		s.writeError(w, r, http.StatusNotFound, api.NotFoundf("flight recorder disabled on this node"))
		return
	}
	limit := 128
	if q := r.URL.Query().Get("n"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			limit = n
		}
	}
	recorded, promoted := s.flight.Stats()
	recs := s.flight.Recent(limit)
	resp := api.FlightResponse{
		Node:           s.cfg.ReplicaID,
		Recorded:       recorded,
		Promoted:       promoted,
		Records:        make([]api.FlightRecord, len(recs)),
		PinnedTraceIDs: s.traces.Pinned(),
	}
	for i, rec := range recs {
		resp.Records[i] = flightWire(rec)
	}
	s.writeJSON(w, http.StatusOK, resp)
}
