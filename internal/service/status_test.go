package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"halotis/client"
	"halotis/internal/netfmt"
	"halotis/internal/service"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// TestStatusAndSeriesEndpoints: a healthy node reports "ok" with two burn
// windows covering the live traffic, and /v1/series serves the ring.
func TestStatusAndSeriesEndpoints(t *testing.T) {
	_, ts := newTracedService(t, service.Config{})
	ctx := context.Background()
	c := client.New(ts.URL)

	if _, err := c.Simulate(ctx, client.SimRequest{
		Netlist: netfmt.C17Bench(), Format: "bench",
		Request: client.Request{TEnd: 30, Stimulus: c17WireStimulus()},
	}); err != nil {
		t.Fatal(err)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" {
		t.Errorf("status = %q, want ok", st.Status)
	}
	if st.SLO.TargetP99Ms != 500 || st.SLO.TargetAvailability != 0.999 {
		t.Errorf("SLO config = %+v, want defaults (500ms, 0.999)", st.SLO)
	}
	if len(st.Windows) != 2 {
		t.Fatalf("windows = %d, want fast+slow", len(st.Windows))
	}
	for _, w := range st.Windows {
		// The sampler has not ticked yet (10s resolution); the live
		// remainder must still be visible so breaches surface immediately.
		if w.Requests < 1 {
			t.Errorf("window %q requests = %g, want >= 1 (live remainder)", w.Name, w.Requests)
		}
		if w.Firing {
			t.Errorf("window %q firing on a healthy node", w.Name)
		}
	}
	if st.QueueDrainEstimateMs <= 0 {
		t.Errorf("drain estimate = %g, want > 0", st.QueueDrainEstimateMs)
	}

	se, err := c.Series(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if se.ResolutionMs != 10_000 {
		t.Errorf("resolution = %dms, want 10000", se.ResolutionMs)
	}
}

// TestFlightRecorderRecordsRequests: API requests land in the flight
// recorder with their interior observations (kernel events on a miss, the
// cached flag on a repeat).
func TestFlightRecorderRecordsRequests(t *testing.T) {
	_, ts := newTracedService(t, service.Config{})
	ctx := context.Background()
	c := client.New(ts.URL)

	req := client.SimRequest{
		Netlist: netfmt.C17Bench(), Format: "bench",
		Request: client.Request{TEnd: 30, Stimulus: c17WireStimulus()},
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Simulate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	fr, err := c.FlightRecords(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Recorded != 2 || len(fr.Records) != 2 {
		t.Fatalf("recorded = %d, records = %d, want 2/2", fr.Recorded, len(fr.Records))
	}
	// Newest first: the repeat is a cache hit, the original did kernel work.
	if !fr.Records[0].Cached {
		t.Errorf("repeat record not flagged cached: %+v", fr.Records[0])
	}
	if fr.Records[1].KernelEvents == 0 {
		t.Errorf("miss record carries no kernel events: %+v", fr.Records[1])
	}
	for _, rec := range fr.Records {
		if rec.Route != "simulate" || rec.StatusCode != http.StatusOK {
			t.Errorf("record = %+v, want simulate/200", rec)
		}
		if rec.TraceID == "" {
			t.Errorf("record carries no trace ID (self-tracing off?): %+v", rec)
		}
	}
}

// TestSlowRequestPromotedWithSpanTree is the replica-side postmortem
// acceptance: with an absurdly tight latency SLO every request breaches,
// so an untraced simulate must (a) appear in /v1/flightrecorder flagged
// slow+pinned, (b) flip /v1/status to firing via the live remainder, and
// (c) have its full span tree retrievable by the record's trace ID even
// though nobody enabled tracing — while staying invisible in the
// /v1/traces listing and the external-trace counter.
func TestSlowRequestPromotedWithSpanTree(t *testing.T) {
	_, ts := newTracedService(t, service.Config{SLOTargetP99: time.Nanosecond})
	ctx := context.Background()
	c := client.New(ts.URL)

	if _, err := c.Simulate(ctx, client.SimRequest{
		Netlist: netfmt.C17Bench(), Format: "bench",
		Request: client.Request{TEnd: 30, Stimulus: c17WireStimulus()},
	}); err != nil {
		t.Fatal(err)
	}

	fr, err := c.FlightRecords(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(fr.Records))
	}
	rec := fr.Records[0]
	if !rec.Slow || !rec.Pinned {
		t.Fatalf("breaching record not promoted: %+v", rec)
	}
	if rec.TraceID == "" {
		t.Fatal("promoted record carries no trace ID")
	}
	if len(fr.PinnedTraceIDs) != 1 || fr.PinnedTraceIDs[0] != rec.TraceID {
		t.Errorf("pinned IDs = %v, want [%s]", fr.PinnedTraceIDs, rec.TraceID)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "firing" {
		t.Errorf("status = %q, want firing (every request breaches)", st.Status)
	}
	if st.TracesPinned != 1 || len(st.Exemplars) != 1 || st.Exemplars[0] != rec.TraceID {
		t.Errorf("status exemplars = %v (pinned %d), want the promoted trace", st.Exemplars, st.TracesPinned)
	}

	// The pinned span tree resolves by ID with the request's whole life...
	tr, err := c.Trace(ctx, rec.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"replica.request", "queue.wait", "compile", "kernel.run"} {
		if !names[want] {
			t.Errorf("pinned trace missing span %q (have %v)", want, names)
		}
	}
	// ...yet the internal trace stays out of the external listing.
	sums, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 0 {
		t.Errorf("internal trace leaked into /v1/traces: %+v", sums)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"halotisd_traces_pinned 1",
		"halotisd_flight_promoted_total 1",
		"halotisd_traces_started_total 0",
	} {
		if !containsLine(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func containsLine(text, line string) bool {
	for len(text) > 0 {
		i := 0
		for i < len(text) && text[i] != '\n' {
			i++
		}
		if text[:i] == line {
			return true
		}
		if i == len(text) {
			break
		}
		text = text[i+1:]
	}
	return false
}

// TestObservabilityDisabled: negative SeriesWindows/FlightCapacity turn
// the whole surface off — 404s, no self-tracing, and the untraced fast
// path back in force.
func TestObservabilityDisabled(t *testing.T) {
	_, ts := newTracedService(t, service.Config{SeriesWindows: -1, FlightCapacity: -1})
	ctx := context.Background()
	c := client.New(ts.URL)

	if _, err := c.Simulate(ctx, client.SimRequest{
		Netlist: netfmt.C17Bench(), Format: "bench",
		Request: client.Request{TEnd: 30, Stimulus: c17WireStimulus()},
	}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/status", "/v1/series", "/v1/flightrecorder"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404 when disabled", path, resp.StatusCode)
		}
	}
}

// TestBusyRetryAfterFromDrainEstimate: a closed (draining) daemon's 503
// carries a Retry-After derived from the drain estimate — at least the 1s
// wire floor — in both the header and the typed body.
func TestBusyRetryAfterFromDrainEstimate(t *testing.T) {
	s, ts := newTracedService(t, service.Config{})
	s.Close()

	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		jsonBody(t, client.SimRequest{Netlist: netfmt.C17Bench(), Format: "bench",
			Request: client.Request{TEnd: 30, Stimulus: c17WireStimulus()}}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 from a draining daemon", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After header = %q, want >= 1 second", ra)
	}
	var body struct {
		RetryAfterMs int64 `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RetryAfterMs < 1000 {
		t.Errorf("retry_after_ms = %d, want >= 1000 (wire floor)", body.RetryAfterMs)
	}
}
