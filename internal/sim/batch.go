package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"halotis/internal/circ"
	"halotis/internal/netlist"
)

// RunBatch simulates every stimulus against the same circuit until tEnd and
// returns one detached Result per stimulus, in stimulus order.
//
// The circuit is compiled once (see circ.Compile); each worker goroutine
// owns one reusable Engine over the shared read-only IR, so the per-run cost is the
// kernel's event loop alone. Because every run starts from a full Reset,
// results are bit-identical to single-shot Simulate of the same stimulus
// regardless of worker count or scheduling — parallelism changes only the
// wall-clock time. opt.Workers bounds the goroutine count (<= 0 means
// GOMAXPROCS).
//
// On error the first failure (by stimulus index) is returned; results for
// stimuli that completed before the failure was observed may be non-nil.
//
// RunBatch honors opt.Ctx; RunBatchContext takes the context explicitly.
func RunBatch(ckt *netlist.Circuit, stimuli []Stimulus, tEnd float64, opt Options) ([]*Result, error) {
	return RunBatchContext(opt.Ctx, ckt, stimuli, tEnd, opt)
}

// RunBatchContext is RunBatch with cancellation: once ctx is done, every
// in-flight run aborts at event-pop granularity and no further stimulus is
// started; the first per-stimulus error (which wraps ctx.Err() for aborted
// runs) is returned. A nil ctx means no cancellation.
func RunBatchContext(ctx context.Context, ckt *netlist.Circuit, stimuli []Stimulus, tEnd float64, opt Options) ([]*Result, error) {
	opt.setDefaults()
	results := make([]*Result, len(stimuli))
	if len(stimuli) == 0 {
		return results, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(stimuli) {
		workers = len(stimuli)
	}

	ir := circ.Compile(ckt)
	errs := make([]error, len(stimuli))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := newEngineFromIR(ir, opt)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stimuli) {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					errs[i] = fmt.Errorf("sim: batch aborted before stimulus started: %w", ctx.Err())
					continue
				}
				res, err := eng.RunContext(ctx, stimuli[i], tEnd)
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = res.Detach()
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sim: batch stimulus %d: %w", i, err)
		}
	}
	return results, nil
}
