package sim

import (
	"fmt"
	"time"

	"halotis/internal/delay"
	"halotis/internal/eventq"
	"halotis/internal/netlist"
	"halotis/internal/wave"
)

// ClassicOptions configures the conventional inertial-delay baseline.
type ClassicOptions struct {
	// AssumedSlew is the input transition time fed to the delay macromodel
	// (classic simulators do not track slews). Default 0.5 ns.
	AssumedSlew float64
	// MaxEvents aborts oscillating runs. Default 50e6.
	MaxEvents uint64
}

func (o *ClassicOptions) setDefaults() {
	if o.AssumedSlew <= 0 {
		o.AssumedSlew = 0.5
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 50_000_000
	}
}

// classicEvent is a committed boolean change of one net.
type classicEvent struct {
	net *netlist.Net
	val bool
}

// ClassicResult is the outcome of a classic inertial-delay run.
type ClassicResult struct {
	// Stats counters (EventsQueued/Processed/Filtered as in Stats).
	Stats Stats
	// Elapsed is the kernel wall-clock time.
	Elapsed time.Duration

	ckt *netlist.Circuit
	wfs []*wave.Waveform
}

// Waveform returns the reconstructed waveform of the named net, or nil.
// Classic simulation is purely boolean; edges are rendered as nominal-slew
// ramps for display and comparison.
func (r *ClassicResult) Waveform(net string) *wave.Waveform {
	n := r.ckt.NetByName(net)
	if n == nil {
		return nil
	}
	return r.wfs[n.ID]
}

// OutputLogic samples every primary output at time t (half-swing threshold).
func (r *ClassicResult) OutputLogic(t float64) map[string]bool {
	out := make(map[string]bool, len(r.ckt.Outputs))
	for _, o := range r.ckt.Outputs {
		out[o.Name] = r.wfs[o.ID].LogicAt(t, r.ckt.Lib.VDD/2)
	}
	return out
}

// RunClassic simulates the circuit with the conventional inertial delay
// model the paper's Fig. 1c criticizes: one threshold for all receivers
// (implicit in the boolean abstraction) and pulse rejection at the *output*
// of each gate — an in-flight output change is cancelled when the gate's
// inputs revert before it fires, so every pulse narrower than the gate
// delay is filtered for all fanouts alike.
func RunClassic(ckt *netlist.Circuit, st Stimulus, tEnd float64, opt ClassicOptions) (*ClassicResult, error) {
	opt.setDefaults()
	inputNames := make(map[string]bool, len(ckt.Inputs))
	for _, in := range ckt.Inputs {
		inputNames[in.Name] = true
	}
	if err := st.Validate(inputNames); err != nil {
		return nil, err
	}

	//halotis:wallclock Elapsed measures the run for stats; it never feeds simulated time
	start := time.Now()
	vdd := ckt.Lib.VDD

	// Settled initial solution.
	vals := make([]bool, len(ckt.Nets))
	for _, in := range ckt.Inputs {
		vals[in.ID] = st[in.Name].Init
	}
	for _, g := range ckt.GatesByLevel() {
		args := make([]bool, len(g.Inputs))
		for i, p := range g.Inputs {
			args[i] = vals[p.Net.ID]
		}
		vals[g.Output.ID] = g.Eval(args)
	}

	wfs := make([]*wave.Waveform, len(ckt.Nets))
	load := make([]float64, len(ckt.Nets))
	for _, n := range ckt.Nets {
		v0 := 0.0
		if vals[n.ID] {
			v0 = vdd
		}
		wfs[n.ID] = wave.NewWaveform(vdd, v0)
		load[n.ID] = n.Load()
	}

	// pending[g] is the in-flight output change of gate g, if any.
	pending := make([]*eventq.Item[classicEvent], len(ckt.Gates))
	q := eventq.New[classicEvent]()
	var stats Stats

	// Schedule stimulus edges as boolean events at their ramp midpoints
	// (the half-swing crossing a single-threshold simulator would see).
	for _, name := range st.sortedNames() {
		w := st[name]
		net := ckt.NetByName(name)
		for _, e := range w.Edges {
			slew := e.Slew
			if slew <= 0 {
				slew = opt.AssumedSlew
			}
			q.Push(e.Time+slew/2, classicEvent{net: net, val: e.Rising})
		}
	}

	propagate := func(now float64, net *netlist.Net, val bool) {
		if vals[net.ID] == val {
			return // redundant change (e.g. repeated stimulus level)
		}
		vals[net.ID] = val
		slew := opt.AssumedSlew
		if d := net.Driver; d != nil {
			pp := d.Cell.Pins[0]
			if val {
				slew = pp.Rise.Slew(load[net.ID], opt.AssumedSlew)
			} else {
				slew = pp.Fall.Slew(load[net.ID], opt.AssumedSlew)
			}
		}
		wfs[net.ID].Add(now, slew, val)
		stats.Transitions++
		for _, pin := range net.Fanout {
			g := pin.Gate
			gvals := make([]bool, len(g.Inputs))
			for i, p := range g.Inputs {
				gvals[i] = vals[p.Net.ID]
			}
			stats.Evaluations++
			newVal := g.Eval(gvals)
			if p := pending[g.ID]; p != nil && !p.Pending() {
				pending[g.ID] = nil
			}
			p := pending[g.ID]
			projected := vals[g.Output.ID]
			if p != nil {
				projected = p.Payload.val
			}
			if newVal == projected {
				continue
			}
			if p != nil {
				// Inertial rejection: the inputs reverted before
				// the scheduled output change fired — the pulse
				// is narrower than the gate delay and is dropped
				// at the output, for every fanout alike.
				q.Remove(p)
				stats.EventsFiltered++
				pending[g.ID] = nil
				continue
			}
			pp := g.Cell.Pins[pin.Index]
			ep := pp.Fall
			if newVal {
				ep = pp.Rise
			}
			res := delay.Conventional(ep, load[g.Output.ID], opt.AssumedSlew)
			pending[g.ID] = q.Push(now+res.Tp, classicEvent{net: g.Output, val: newVal})
		}
	}

	for {
		it := q.Peek()
		if it == nil || it.Time > tEnd {
			break
		}
		q.Pop()
		stats.EventsProcessed++
		if stats.EventsProcessed > opt.MaxEvents {
			return nil, fmt.Errorf("sim: classic event limit exceeded at t=%g", it.Time)
		}
		if g := it.Payload.net.Driver; g != nil && pending[g.ID] == it {
			pending[g.ID] = nil
		}
		propagate(it.Time, it.Payload.net, it.Payload.val)
	}

	queued, _, removed := q.Stats()
	stats.EventsQueued = queued
	if removed != stats.EventsFiltered {
		return nil, fmt.Errorf("sim: classic filtered accounting mismatch: %d vs %d", stats.EventsFiltered, removed)
	}
	//halotis:wallclock Elapsed measures the run for stats; it never feeds simulated time
	return &ClassicResult{Stats: stats, Elapsed: time.Since(start), ckt: ckt, wfs: wfs}, nil
}
