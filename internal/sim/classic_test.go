package sim

import (
	"testing"

	"halotis/internal/cellib"
	"halotis/internal/delay"
	"halotis/internal/netlist"
)

func runClassic(t testing.TB, ckt *netlist.Circuit, st Stimulus, tEnd float64) *ClassicResult {
	t.Helper()
	res, err := RunClassic(ckt, st, tEnd, ClassicOptions{})
	if err != nil {
		t.Fatalf("classic run: %v", err)
	}
	return res
}

func TestClassicStepResponse(t *testing.T) {
	ckt := invChain(t, 1)
	st := Stimulus{"in": InputWave{Edges: []InputEdge{{Time: 2, Rising: true, Slew: 0.4}}}}
	res := runClassic(t, ckt, st, 50)
	out := res.Waveform("out")
	if out.Len() != 1 {
		t.Fatalf("out transitions = %d, want 1", out.Len())
	}
	if out.Transitions()[0].Rising {
		t.Error("inverter output should fall")
	}
	if res.OutputLogic(50)["out"] {
		t.Error("settled output should be 0")
	}
}

func TestClassicSettlesToBooleanSolution(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		ckt := invChain(t, n)
		st := Stimulus{"in": InputWave{Edges: []InputEdge{{Time: 1, Rising: true, Slew: 0.3}}}}
		res := runClassic(t, ckt, st, 200)
		want := n%2 == 0
		if got := res.OutputLogic(200)["out"]; got != want {
			t.Errorf("n=%d: out = %v, want %v", n, got, want)
		}
	}
}

func TestClassicInertialFiltering(t *testing.T) {
	ckt := invChain(t, 1)
	cl := ckt.NetByName("out").Load()
	pp := lib.Cell(cellib.INV).Pins[0]
	tp := delay.Conventional(pp.Fall, cl, 0.5).Tp

	// Pulse narrower than the gate delay: the scheduled output change is
	// cancelled before it fires — classic inertial rejection.
	narrow := pulse("in", 2, tp*0.8, 0.3)
	res := runClassic(t, ckt, narrow, 50)
	if got := res.Waveform("out").Len(); got != 0 {
		t.Errorf("narrow pulse: out transitions = %d, want 0", got)
	}
	if res.Stats.EventsFiltered == 0 {
		t.Error("narrow pulse should record a filtered event")
	}

	// Pulse wider than the gate delay propagates at full swing.
	wide := pulse("in", 2, tp*3, 0.3)
	res2 := runClassic(t, ckt, wide, 50)
	if got := res2.Waveform("out").Len(); got != 2 {
		t.Errorf("wide pulse: out transitions = %d, want 2", got)
	}
}

func TestClassicFiltersAllFanoutsAlike(t *testing.T) {
	// The Fig. 1 point: classic inertial filtering happens at the gate
	// output, so both receivers see the same thing regardless of their
	// threshold — thresholds do not even exist in the boolean engine.
	b := netlist.NewBuilder("fig1c", lib)
	b.Input("in")
	b.AddGate("g0", cellib.INV, "n", "in")
	b.AddGate("g1", cellib.INV, "out1", "n")
	b.AddGate("g2", cellib.INV, "out2", "n")
	b.SetPinVT("g1", 0, 1.0)
	b.SetPinVT("g2", 0, 4.0)
	b.Output("out1")
	b.Output("out2")
	ckt := b.MustBuild()
	// The same 0.40 ns pulse that HALOTIS-DDM propagates selectively
	// (TestPerInputThresholdSelectiveFiltering).
	res := runClassic(t, ckt, pulse("in", 2, 0.16, 0.12), 60)
	n1 := res.Waveform("out1").Len()
	n2 := res.Waveform("out2").Len()
	if (n1 == 0) != (n2 == 0) {
		t.Errorf("classic engine differentiated fanouts: out1=%d out2=%d", n1, n2)
	}
}

func TestClassicRedundantStimulusIgnored(t *testing.T) {
	// Driving an input to the level it already has is a no-op.
	ckt := invChain(t, 1)
	st := Stimulus{"in": InputWave{Init: true, Edges: []InputEdge{{Time: 1, Rising: true, Slew: 0.3}}}}
	res := runClassic(t, ckt, st, 50)
	if got := res.Waveform("in").Len(); got != 0 {
		t.Errorf("redundant edge produced %d transitions", got)
	}
}

func TestClassicValidatesStimulus(t *testing.T) {
	ckt := invChain(t, 1)
	if _, err := RunClassic(ckt, Stimulus{"ghost": {}}, 10, ClassicOptions{}); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestClassicWaveformsValid(t *testing.T) {
	ckt := invChain(t, 5)
	st := Stimulus{"in": InputWave{Edges: []InputEdge{
		{Time: 1, Rising: true, Slew: 0.3},
		{Time: 3, Rising: false, Slew: 0.3},
		{Time: 5, Rising: true, Slew: 0.3},
	}}}
	res := runClassic(t, ckt, st, 100)
	for _, n := range ckt.Nets {
		if err := res.Waveform(n.Name).Validate(); err != nil {
			t.Errorf("net %s: %v", n.Name, err)
		}
	}
	if res.Waveform("ghost") != nil {
		t.Error("unknown net should be nil")
	}
}

func TestClassicVsHalotisAgreeOnCleanSignals(t *testing.T) {
	// For wide, clean transitions all three engines settle identically.
	ckt := invChain(t, 4)
	st := Stimulus{"in": InputWave{Edges: []InputEdge{
		{Time: 2, Rising: true, Slew: 0.3},
		{Time: 12, Rising: false, Slew: 0.3},
	}}}
	cl := runClassic(t, ckt, st, 100)
	dd := run(t, ckt, st, 100, DDM)
	cd := run(t, ckt, st, 100, CDM)
	a := cl.OutputLogic(100)["out"]
	b := dd.OutputLogic(100, vdd/2)["out"]
	c := cd.OutputLogic(100, vdd/2)["out"]
	if a != b || b != c {
		t.Errorf("engines disagree on settled output: classic=%v ddm=%v cdm=%v", a, b, c)
	}
	// And the transition counts match: 2 per net.
	for _, n := range ckt.Nets {
		if got := cl.Waveform(n.Name).Len(); got != 2 {
			t.Errorf("classic net %s transitions = %d, want 2", n.Name, got)
		}
	}
}
