package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"halotis/internal/cellib"
	"halotis/internal/circuits"
	"halotis/internal/netlist"
)

// busyWorkload returns a circuit and stimulus with enough events that a
// cancellation landing mid-run is observable: the 4x4 multiplier driven by
// staggered pulse trains on every input.
func busyWorkload(t *testing.T) (ckt *netlist.Circuit, st Stimulus, tEnd float64) {
	t.Helper()
	lib := cellib.Default06()
	ckt, err := circuits.Multiplier(lib, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 64
	st = Stimulus{}
	for i, in := range ckt.Inputs {
		w := InputWave{}
		rising := true
		for c := 0; c < cycles; c++ {
			tEdge := 1.0 + float64(c)*5.0 + float64(i)*0.3
			w.Edges = append(w.Edges, InputEdge{Time: tEdge, Rising: rising, Slew: 0.2})
			rising = !rising
		}
		st[in.Name] = w
	}
	return ckt, st, 5.0*cycles + 10
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ckt, st, tEnd := busyWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := NewEngine(ckt, Options{})
	_, err := eng.RunContext(ctx, st, tEnd)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx: err = %v, want context.Canceled", err)
	}

	// The engine must remain usable after an aborted run.
	res, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatalf("Run after aborted run: %v", err)
	}
	if res.Stats.EventsProcessed == 0 {
		t.Fatal("no events processed after recovery run")
	}
}

func TestRunContextDeadlineAbortsMidRun(t *testing.T) {
	ckt, st, tEnd := busyWorkload(t)
	eng := NewEngine(ckt, Options{})
	ref, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	total := ref.Stats.EventsProcessed
	if total < 4*ctxCheckMask {
		t.Fatalf("workload too small to observe mid-run aborts: %d events", total)
	}

	// An already-expired deadline must abort promptly, long before the
	// run's full event count.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = eng.RunContext(ctx, st, tEnd)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if eng.st.EventsProcessed >= total {
		t.Fatalf("aborted run processed %d events, full run takes %d", eng.st.EventsProcessed, total)
	}
}

func TestRunNilContextUnaffected(t *testing.T) {
	ckt, st, tEnd := busyWorkload(t)
	eng := NewEngine(ckt, Options{})
	a, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	aStats := a.Stats
	b, err := eng.RunContext(context.Background(), st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	if aStats != b.Stats {
		t.Fatalf("ctx-bearing run diverged: %+v vs %+v", aStats, b.Stats)
	}
}

func TestRunBatchContextCancel(t *testing.T) {
	ckt, st, tEnd := busyWorkload(t)
	sts := make([]Stimulus, 16)
	for i := range sts {
		sts[i] = st
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunBatchContext(ctx, ckt, sts, tEnd, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatchContext on canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestRunBatchOptionsCtx(t *testing.T) {
	ckt, st, tEnd := busyWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunBatch(ckt, []Stimulus{st}, tEnd, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatch with Options.Ctx canceled: err = %v, want context.Canceled", err)
	}
}
