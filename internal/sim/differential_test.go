package sim_test

import (
	"fmt"
	"testing"

	"halotis/internal/cellib"
	"halotis/internal/circuits"
	"halotis/internal/netlist"
	"halotis/internal/sim"
	"halotis/internal/stimuli"
)

// TestFamiliesMatchReference is the refactor's differential guard: every
// scalable circuit family, simulated through the compiled-IR engine, must
// be bit-identical — waveforms and kernel counters — to the pointer-chasing
// reference kernel for both delay models.
func TestFamiliesMatchReference(t *testing.T) {
	lib := cellib.Default06()
	type workload struct {
		name string
		ckt  *netlist.Circuit
	}
	var wls []workload
	for _, fam := range circuits.ScalableFamilies() {
		ckt, err := fam.Build(lib, 250)
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		wls = append(wls, workload{fam.Name, ckt})
	}
	// Also pin the threshold-override path (Fig. 1) and an ISCAS85 import.
	fig1, err := circuits.Figure1(lib)
	if err != nil {
		t.Fatal(err)
	}
	wls = append(wls, workload{"figure1", fig1})
	c17, err := circuits.C17(lib)
	if err != nil {
		t.Fatal(err)
	}
	wls = append(wls, workload{"c17", c17})

	const (
		vectors = 6
		period  = 5.0
		slew    = 0.2
		tEnd    = period * (vectors + 1)
	)
	for _, wl := range wls {
		st, err := stimuli.RandomStimulusFor(wl.ckt, vectors, period, slew, 99)
		if err != nil {
			t.Fatalf("%s: stimulus: %v", wl.name, err)
		}
		for _, m := range []sim.Model{sim.DDM, sim.CDM} {
			label := fmt.Sprintf("%s/%v", wl.name, m)
			got, err := sim.New(wl.ckt, sim.Options{Model: m}).Run(st, tEnd)
			if err != nil {
				t.Fatalf("%s: engine: %v", label, err)
			}
			want, err := referenceRun(wl.ckt, st, tEnd, m)
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}
			if got.Stats != want.stats {
				t.Fatalf("%s: stats differ:\n engine    %+v\n reference %+v", label, got.Stats, want.stats)
			}
			if got.Stats.EventsProcessed == 0 {
				t.Fatalf("%s: degenerate workload, nothing simulated", label)
			}
			for _, n := range wl.ckt.Nets {
				gt := got.Waveform(n.Name).Transitions()
				wt := want.wfs[n.Name].Transitions()
				if len(gt) != len(wt) {
					t.Fatalf("%s: net %s transition count %d != %d", label, n.Name, len(gt), len(wt))
				}
				for i := range gt {
					if gt[i] != wt[i] {
						t.Fatalf("%s: net %s transition %d differs:\n engine    %v\n reference %v",
							label, n.Name, i, &gt[i], &wt[i])
					}
				}
			}
		}
	}
}
