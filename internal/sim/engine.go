package sim

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"time"

	"halotis/internal/cellib"
	"halotis/internal/circ"
	"halotis/internal/delay"
	"halotis/internal/eventq"
	"halotis/internal/netlist"
	"halotis/internal/wave"
)

// event is the queue payload: a threshold crossing at one gate input pin,
// identified by its flat global pin id. The payload is a small value type so
// the arena queue stores it inline with no per-event allocation.
//
// Events are ordered by (time, pin id) — the pin id, not the insertion
// sequence, breaks time ties. The order is total because two live crossings
// never share a pin (the engine keeps at most one pending event per pin),
// and it is structural: a property of the scheduled set alone, independent
// of scheduling order. That is what lets the partitioned kernel, whose
// partitions schedule concurrently into separate queues, reproduce the
// sequential kernel's event order bit-for-bit.
type event struct {
	pin    int32
	rising bool
	// slew of the transition that caused the crossing; it becomes the
	// tau_in of the receiving gate's delay evaluation.
	slew float64
}

// Engine is the reusable HALOTIS simulation kernel. Unlike the one-shot
// Simulator, an Engine may run any number of stimuli over its circuit: each
// Run (or explicit Reset) reinitializes the mutable state — waveforms, gate
// slabs, the event queue — in place, retaining all storage capacity. After a
// warm-up run has grown the buffers to a workload's high-water mark,
// subsequent runs of comparable workloads perform zero heap allocations.
//
// An Engine is not safe for concurrent use; for parallel workloads run one
// engine per goroutine over a shared circuit (see RunBatch).
//
// The Result returned by Run aliases the engine's waveform storage and is
// valid only until the next Run or Reset; call Result.Detach to keep it.
type Engine struct {
	ir  *circ.Compiled
	opt Options

	q      eventq.ArenaQueue[event]
	wfs    []*wave.Waveform // by net ID, pointing into wfSlab, reset in place
	wfSlab []wave.Waveform  // contiguous waveform storage, one entry per net

	// Mutable per-pin slabs, indexed by global pin id (see circ.Compiled).
	inVals  []bool          // current logic value at each gate input pin
	pending []eventq.Handle // scheduled-but-unfired crossing per pin

	// Mutable per-gate slabs, indexed by gate ID.
	outTarget    []bool    // logic value the output is at or heading toward
	lastOutStart []float64 // start of the most recent output transition; -Inf before it

	netVals []bool   // scratch for the settled initial-state evaluation
	names   []string // scratch for deterministic stimulus ordering

	now float64
	st  Stats
	res Result // reused result storage returned by Run

	part      *partRun // partitioned-execution state, built on first use
	fireHook  func(pin int32, t float64)
	profiling bool // materialize Result.Profile (see SetProfiling)

	progress    *atomic.Uint64 // live event counter, published every 64 pops (see SetProgress)
	progressPub uint64         // events already published to progress this run
}

// NewEngine prepares a reusable engine for the circuit.
func NewEngine(ckt *netlist.Circuit, opt Options) *Engine {
	opt.setDefaults()
	return newEngineFromIR(circ.Compile(ckt), opt)
}

// NewEngineFromIR prepares a reusable engine directly over a compiled IR,
// for callers (the batch runner, the service's engine pools) that hold the
// IR already and must not pay a netlist lookup per engine.
func NewEngineFromIR(ir *circ.Compiled, opt Options) *Engine {
	opt.setDefaults()
	return newEngineFromIR(ir, opt)
}

func newEngineFromIR(ir *circ.Compiled, opt Options) *Engine {
	numPins := ir.NumPins()
	e := &Engine{
		ir:           ir,
		opt:          opt,
		wfs:          make([]*wave.Waveform, ir.NumNets()),
		wfSlab:       make([]wave.Waveform, ir.NumNets()),
		inVals:       make([]bool, numPins),
		pending:      make([]eventq.Handle, numPins),
		outTarget:    make([]bool, ir.NumGates()),
		lastOutStart: make([]float64, ir.NumGates()),
		netVals:      make([]bool, ir.NumNets()),
		profiling:    opt.Profile,
	}
	return e
}

// Circuit returns the circuit the engine simulates.
func (e *Engine) Circuit() *netlist.Circuit { return e.ir.Circuit }

// IR returns the compiled circuit representation the engine runs against.
func (e *Engine) IR() *circ.Compiled { return e.ir }

// Reset reinitializes the engine for a new run of the given stimulus without
// reallocating: waveforms are rewound to the settled boolean solution of the
// stimulus's initial input levels, gate slabs are refilled, the event queue
// is emptied with its arena intact, and all counters restart.
//
//halotis:noalloc
func (e *Engine) Reset(st Stimulus) {
	ir := e.ir

	// Settled boolean solution of the initial input levels. Filling the
	// per-pin inVals slab here doubles as the gate-state initialization.
	for _, in := range ir.Inputs {
		e.netVals[in] = st[ir.NetName[in]].Init
	}
	for _, gid := range ir.LevelOrder {
		a, b := ir.PinStart[gid], ir.PinStart[gid+1]
		for p := a; p < b; p++ {
			e.inVals[p] = e.netVals[ir.PinNet[p]]
		}
		e.netVals[ir.GateOut[gid]] = ir.GateKind[gid].Eval(e.inVals[a:b])
	}

	for i := range e.wfs {
		v0 := 0.0
		if e.netVals[i] {
			v0 = ir.VDD
		}
		if e.wfs[i] == nil {
			e.wfSlab[i] = wave.Waveform{VDD: ir.VDD, VInit: v0}
			e.wfs[i] = &e.wfSlab[i]
		} else {
			e.wfs[i].Reset(v0)
		}
	}

	for g := range e.outTarget {
		e.outTarget[g] = e.netVals[ir.GateOut[g]]
		e.lastOutStart[g] = math.Inf(-1)
	}
	for p := range e.pending {
		e.pending[p] = eventq.NoHandle
	}

	e.q.Reset()
	e.now = 0
	e.st = Stats{}
	e.progressPub = 0
}

// ctxCheckMask batches the cancellation check of RunContext: the context is
// consulted when EventsProcessed & ctxCheckMask == 0, i.e. before the first
// pop and every 64 pops after, keeping the per-event cost of cancellation
// support at one predictable branch.
const ctxCheckMask = 63

// Run validates and simulates one stimulus until no event at or before tEnd
// remains. It may be called repeatedly; each call resets the engine state in
// place first. The returned Result aliases engine storage and is invalidated
// by the next Run or Reset — Detach it to keep it. Run honors the engine
// options' Ctx when one was set; RunContext takes one explicitly.
//
//halotis:noalloc
func (e *Engine) Run(st Stimulus, tEnd float64) (*Result, error) {
	return e.RunContext(e.opt.Ctx, st, tEnd)
}

// RunContext is Run with cancellation: the context's deadline or
// cancellation aborts the event loop at event-pop granularity (checked every
// 64 pops), returning an error that wraps ctx.Err(). A nil ctx means no
// cancellation and adds no per-event cost.
//
//halotis:noalloc
func (e *Engine) RunContext(ctx context.Context, st Stimulus, tEnd float64) (*Result, error) {
	if err := st.Validate(e.ir.InputSet); err != nil {
		return nil, err
	}
	if k := resolvePartitions(e.opt.Partitions, e.ir.NumGates()); k > 1 {
		if pt := e.ir.Partition(k); pt.K > 1 {
			return e.runPartitioned(ctx, st, tEnd, pt)
		}
	}
	//halotis:wallclock Result.Elapsed measures the run for stats; it never feeds simulated time
	start := time.Now()
	e.Reset(st)
	e.applyStimulus(st)

	for {
		if e.st.EventsProcessed&ctxCheckMask == 0 {
			e.publishProgress()
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("sim: run aborted at t=%g ns after %d events: %w",
						e.now, e.st.EventsProcessed, err)
				}
			}
		}
		tNext, ok := e.q.PeekTime()
		if !ok || tNext > tEnd {
			break
		}
		h, t, ev, _ := e.q.Pop()
		if t < e.now {
			e.publishProgress()
			return nil, fmt.Errorf("sim: causality violation: event at %g before now %g", t, e.now)
		}
		e.now = t
		e.st.EventsProcessed++
		if e.st.EventsProcessed > e.opt.MaxEvents {
			e.publishProgress()
			return nil, fmt.Errorf("sim: event limit %d exceeded at t=%g ns (oscillation?)", e.opt.MaxEvents, e.now)
		}
		if e.fireHook != nil {
			e.fireHook(ev.pin, t)
		}
		e.fire(h, ev)
	}
	e.publishProgress()

	//halotis:wallclock Result.Elapsed measures the run for stats; it never feeds simulated time
	elapsed := time.Since(start)
	queued, _, removed := e.q.Stats()
	e.st.EventsQueued = queued
	if e.st.EventsFiltered != removed {
		// The two counters track the same deletions through different
		// paths; disagreement means an engine bug.
		return nil, fmt.Errorf("sim: filtered-event accounting mismatch: %d vs %d", e.st.EventsFiltered, removed)
	}
	e.res = Result{
		Model:   e.opt.Model,
		Stats:   e.st,
		Elapsed: elapsed,
		EndTime: tEnd,
		ir:      e.ir,
		wfs:     e.wfs,
	}
	if e.profiling {
		// The sequential kernel is one "worker" with no partition
		// boundaries to stall on or message across.
		//halotis:alloc profiling is opt-in; the pinned zero-alloc steady state runs with it off
		e.res.Profile = &Profile{
			Partitions: 1,
			Workers: []WorkerProfile{{
				Partition:       0,
				EventsProcessed: e.st.EventsProcessed,
			}},
		}
	}
	return &e.res, nil
}

// applyStimulus emits the externally driven transitions onto the primary
// input nets in deterministic (sorted-name) order, scheduling receiver
// events through the same reconciliation path gate outputs use.
//
//halotis:noalloc
func (e *Engine) applyStimulus(st Stimulus) {
	e.names = e.names[:0]
	for name := range st {
		e.names = append(e.names, name)
	}
	slices.Sort(e.names)
	for _, name := range e.names {
		w := st[name]
		net := e.ir.NetID(name)
		for _, edge := range w.Edges {
			slew := edge.Slew
			if slew <= 0 {
				slew = e.opt.DefaultSlew
			}
			e.emit(net, edge.Time, slew, edge.Rising)
		}
	}
}

// emit appends a transition to a net's waveform and reconciles every fanout
// pin's pending event, implementing the insertion/deletion rule of the
// paper's Fig. 4 algorithm.
//
//halotis:noalloc
func (e *Engine) emit(net int32, start, slew float64, rising bool) {
	ir := e.ir
	wf := e.wfs[net]
	tr := wf.Add(start, slew, rising)
	e.st.Transitions++
	for _, pin := range ir.FanPins[ir.FanStart[net]:ir.FanStart[net+1]] {
		// Rule 1: a pending crossing pre-empted by this truncation
		// (its crossing time is at or after the new ramp's start)
		// never happens; delete it from the queue.
		if h := e.pending[pin]; h != eventq.NoHandle {
			if pt, live := e.q.TimeOf(h); !live {
				e.pending[pin] = eventq.NoHandle
			} else if pt >= start {
				e.q.Remove(h)
				e.st.EventsFiltered++
				e.pending[pin] = eventq.NoHandle
			}
		}
		// Rule 2: schedule the new ramp's crossing of this pin's VT,
		// if the ramp crosses at all. A ramp that starts on the far
		// side of VT (a runt that never reached it) schedules
		// nothing — the pulse is filtered at this input.
		ct, ok := tr.Crossing(ir.PinVT[pin])
		if !ok {
			continue
		}
		if h := e.pending[pin]; h != eventq.NoHandle {
			if pt, live := e.q.TimeOf(h); live && ct <= pt {
				// Paper rule Ej <= Ej-1: delete Ej-1, do not insert Ej.
				// Geometrically unreachable after rule 1 (kept for
				// engine robustness).
				e.q.Remove(h)
				e.st.EventsFiltered++
				e.pending[pin] = eventq.NoHandle
				continue
			}
		}
		e.pending[pin] = e.q.PushKeyed(ct, uint64(uint32(pin)), event{pin: pin, rising: rising, slew: slew})
	}
}

// fire consumes one event: updates the pin's logic value, re-evaluates the
// gate, and emits a delayed output transition when the output target flips.
// h is the popped event's (stale) handle, used to reconcile the per-pin
// pending record.
//
//halotis:noalloc
func (e *Engine) fire(h eventq.Handle, ev event) {
	ir := e.ir
	pin := ev.pin
	g := ir.PinGate[pin]
	if e.pending[pin] == h {
		e.pending[pin] = eventq.NoHandle
	}
	e.inVals[pin] = ev.rising

	e.st.Evaluations++
	a, b := ir.PinStart[g], ir.PinStart[g+1]
	newTarget := ir.GateKind[g].Eval(e.inVals[a:b])
	if newTarget == e.outTarget[g] {
		return
	}

	out := ir.GateOut[g]
	res := e.delayFor(g, pin, out, ev, e.now, newTarget)
	if res.Filtered {
		e.st.FullyDegraded++
	} else if res.Degraded {
		e.st.DegradedTransitions++
	}

	// Clamp to a causal, per-net monotonic start time. Full degradation
	// (tp <= 0) collapses the pulse to a MinPulse sliver right after the
	// previous output transition; receivers then cancel its crossings.
	tp := math.Max(res.Tp, e.opt.MinPulse)
	start := e.now + tp
	if min := e.lastOutStart[g] + e.opt.MinPulse; start < min {
		start = min
	}

	e.outTarget[g] = newTarget
	e.lastOutStart[g] = start
	e.emit(out, start, res.Slew, newTarget)
}

// delayFor evaluates the configured delay model for an output flip of gate g
// triggered by the event on pin at time now; the one copy of the model
// dispatch shared by the sequential and partitioned fire paths.
//
//halotis:noalloc
func (e *Engine) delayFor(g, pin, out int32, ev event, now float64, newTarget bool) delay.Result {
	ir := e.ir
	cl := ir.Load[out]
	var ep cellib.EdgeParams
	if newTarget {
		ep = ir.PinRise[pin]
	} else {
		ep = ir.PinFall[pin]
	}
	switch e.opt.Model {
	case DDM:
		T := now - e.lastOutStart[g] // +Inf before the first transition
		return delay.Degraded(ep, ir.VDD, cl, ev.slew, T)
	default:
		return delay.Conventional(ep, cl, ev.slew)
	}
}

// SetFireHook installs an instrumentation callback invoked by the sequential
// kernel after every event pop, with the event's pin and time, before the
// event fires. The partition-schedule model in halobench replays a
// sequential run through it to compute critical-path bounds; a nil hook (the
// default) costs one predicted branch per event. Not honored by the
// partitioned path.
func (e *Engine) SetFireHook(h func(pin int32, t float64)) { e.fireHook = h }

// SetProfiling toggles per-run kernel profiling on a live engine: when on,
// the next Run's Result.Profile carries per-worker counters (see Profile).
// Pooled engines are profiled per request this way — profiling is run
// state, not identity, so it does not fragment engine pools. When off (the
// default) no profile is materialized and the steady-state run path
// performs zero allocations, exactly as without the feature.
func (e *Engine) SetProfiling(on bool) { e.profiling = on }

// SetProgress attaches a live event counter: during a run the kernel adds
// exact event deltas into c every ctxCheckMask+1 pops (and a final
// remainder when the run ends, normally or not), so an external sampler
// can derive kernel events/sec while a long run is still in flight. Like
// profiling, progress is run state, not identity — pooled engines share
// the node-wide counter. A nil counter (the default) restores the
// unobserved path at the cost of one predicted branch per check batch.
// Both the sequential and partitioned kernels honor it; partitioned
// workers publish their deltas concurrently.
func (e *Engine) SetProgress(c *atomic.Uint64) { e.progress = c }

// publishProgress flushes the events processed since the last publish
// into the attached progress counter.
//
//halotis:noalloc
func (e *Engine) publishProgress() {
	if e.progress == nil {
		return
	}
	e.progress.Add(e.st.EventsProcessed - e.progressPub)
	e.progressPub = e.st.EventsProcessed
}
