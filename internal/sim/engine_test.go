package sim

import "testing"

// chainStim is a small multi-edge workload for the reuse tests.
func chainStim() Stimulus {
	return Stimulus{"in": InputWave{Init: false, Edges: []InputEdge{
		{Time: 1, Rising: true, Slew: 0.3},
		{Time: 1.6, Rising: false, Slew: 0.4},
		{Time: 2.9, Rising: true, Slew: 0.2},
		{Time: 6, Rising: false, Slew: 0.3},
	}}}
}

// sameWaveforms fails the test unless the two results carry bit-identical
// transitions on every net.
func sameWaveforms(t *testing.T, label string, a, b *Result) {
	t.Helper()
	for _, n := range a.Circuit().Nets {
		wa := a.Waveform(n.Name).Transitions()
		wb := b.Waveform(n.Name).Transitions()
		if len(wa) != len(wb) {
			t.Fatalf("%s: net %s transition counts differ: %d vs %d", label, n.Name, len(wa), len(wb))
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("%s: net %s transition %d differs:\n  %v\n  %v", label, n.Name, i, &wa[i], &wb[i])
			}
		}
	}
}

// TestEngineReuseMatchesFreshRuns checks that an engine run N times over
// interleaved stimuli and models reproduces single-shot results exactly.
func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	ckt := invChain(t, 6)
	stims := []Stimulus{
		chainStim(),
		pulse("in", 2, 0.22, 0.12),
		{}, // quiescent
		{"in": InputWave{Init: true, Edges: []InputEdge{{Time: 3, Rising: false, Slew: 0.5}}}},
		chainStim(), // repeat of the first: must be bit-identical to run 0
	}
	for _, m := range []Model{DDM, CDM} {
		eng := NewEngine(ckt, Options{Model: m})
		var kept []*Result
		for i, st := range stims {
			got, err := eng.Run(st, 100)
			if err != nil {
				t.Fatalf("%v run %d: %v", m, i, err)
			}
			fresh, err := New(ckt, Options{Model: m}).Run(st, 100)
			if err != nil {
				t.Fatalf("%v fresh %d: %v", m, i, err)
			}
			if got.Stats != fresh.Stats {
				t.Fatalf("%v run %d stats differ:\n reuse %+v\n fresh %+v", m, i, got.Stats, fresh.Stats)
			}
			sameWaveforms(t, m.String(), got, fresh)
			kept = append(kept, got.Detach())
		}
		// Detached results must have survived all subsequent reuse.
		sameWaveforms(t, m.String()+" detach", kept[0], kept[4])
		if kept[0].Stats != kept[4].Stats {
			t.Fatalf("%v: repeated stimulus changed stats across reuse", m)
		}
		for _, n := range ckt.Nets {
			if err := kept[1].Waveform(n.Name).Validate(); err != nil {
				t.Errorf("%v: detached waveform %s invalid: %v", m, n.Name, err)
			}
		}
	}
}

// TestEngineRunAliasesUntilDetach documents the aliasing contract: the
// un-detached result of run i is overwritten by run i+1.
func TestEngineRunAliasesUntilDetach(t *testing.T) {
	ckt := invChain(t, 2)
	eng := NewEngine(ckt, Options{})
	r1, err := eng.Run(pulse("in", 2, 1.5, 0.3), 50)
	if err != nil {
		t.Fatal(err)
	}
	n1 := r1.Waveform("out").Len()
	if n1 == 0 {
		t.Fatal("expected transitions on out")
	}
	if _, err := eng.Run(Stimulus{}, 50); err != nil {
		t.Fatal(err)
	}
	if got := r1.Waveform("out").Len(); got != 0 {
		t.Errorf("stale result kept %d transitions; expected reuse to have reset the aliased waveform", got)
	}
}

// TestEngineSteadyStateZeroAllocs is the kernel's headline perf property:
// after a warm-up run, a reused engine performs a whole simulation —
// stimulus application, event loop, waveform writes — without allocating.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	ckt := invChain(t, 8)
	st := chainStim()
	for _, m := range []Model{DDM, CDM} {
		eng := NewEngine(ckt, Options{Model: m})
		if _, err := eng.Run(st, 100); err != nil { // warm-up
			t.Fatal(err)
		}
		//halotis:pins Run
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := eng.Run(st, 100); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: steady-state allocs/run = %g, want 0", m, allocs)
		}
	}
}

// TestRunBatchMatchesSequential checks batch results are bit-identical to
// one-at-a-time engine runs, in order, for both models and any worker count.
func TestRunBatchMatchesSequential(t *testing.T) {
	ckt := invChain(t, 5)
	var stims []Stimulus
	for i := 0; i < 23; i++ {
		w := 0.1 + 0.05*float64(i)
		stims = append(stims, pulse("in", 1.5, w, 0.15))
	}
	for _, m := range []Model{DDM, CDM} {
		for _, workers := range []int{1, 4, 0} {
			got, err := RunBatch(ckt, stims, 80, Options{Model: m, Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, workers, err)
			}
			if len(got) != len(stims) {
				t.Fatalf("%v: %d results for %d stimuli", m, len(got), len(stims))
			}
			for i, st := range stims {
				want, err := New(ckt, Options{Model: m}).Run(st, 80)
				if err != nil {
					t.Fatal(err)
				}
				if got[i].Stats != want.Stats {
					t.Fatalf("%v workers=%d stimulus %d: stats differ", m, workers, i)
				}
				sameWaveforms(t, m.String(), got[i], want)
			}
		}
	}
}

// TestRunBatchEmptyAndErrors covers the edge paths: empty input, invalid
// stimulus index reported.
func TestRunBatchEmptyAndErrors(t *testing.T) {
	ckt := invChain(t, 2)
	res, err := RunBatch(ckt, nil, 10, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	stims := []Stimulus{
		pulse("in", 1, 0.5, 0.3),
		{"ghost": InputWave{}}, // invalid: unknown input
		pulse("in", 1, 0.7, 0.3),
	}
	_, err = RunBatch(ckt, stims, 10, Options{})
	if err == nil {
		t.Fatal("invalid stimulus not reported")
	}
}

// TestDetachIndependence checks a detached result shares nothing with the
// engine's live storage.
func TestDetachIndependence(t *testing.T) {
	ckt := invChain(t, 2)
	eng := NewEngine(ckt, Options{})
	r, err := eng.Run(pulse("in", 2, 1.0, 0.3), 50)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Detach()
	live := r.Waveform("out").Transitions()
	det := d.Waveform("out").Transitions()
	if len(live) == 0 || len(det) != len(live) {
		t.Fatalf("detach mismatch: %d vs %d", len(det), len(live))
	}
	if &live[0] == &det[0] {
		t.Error("detached waveform aliases engine storage")
	}
}
