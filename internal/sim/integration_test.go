package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"halotis/internal/cellib"
	"halotis/internal/circuits"
	"halotis/internal/netlist"
)

// applyVector drives each circuit input toward the given bit at time t.
func applyVector(names []string, bits map[string]bool, t, slew float64, init map[string]bool) Stimulus {
	st := Stimulus{}
	for _, n := range names {
		w := InputWave{Init: init[n]}
		if bits[n] != init[n] {
			w.Edges = []InputEdge{{Time: t, Rising: bits[n], Slew: slew}}
		}
		st[n] = w
	}
	return st
}

// TestRippleCarryAdderTiming drives random operand pairs into the 4-bit RCA
// and checks the settled sum under both models.
func TestRippleCarryAdderTiming(t *testing.T) {
	ckt, err := circuits.RippleCarryAdder(lib, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var names []string
	for _, in := range ckt.Inputs {
		names = append(names, in.Name)
	}
	for trial := 0; trial < 10; trial++ {
		a, b := rng.Intn(16), rng.Intn(16)
		bits := map[string]bool{}
		for i := 0; i < 4; i++ {
			bits[fmt.Sprintf("a%d", i)] = a>>i&1 == 1
			bits[fmt.Sprintf("b%d", i)] = b>>i&1 == 1
		}
		st := applyVector(names, bits, 1, 0.15, map[string]bool{})
		for _, m := range []Model{DDM, CDM} {
			res := run(t, ckt, st, 30, m)
			out := res.OutputLogic(30, vdd/2)
			got := 0
			for i := 0; i < 4; i++ {
				if out[fmt.Sprintf("s%d", i)] {
					got |= 1 << i
				}
			}
			if out["cout"] {
				got |= 16
			}
			if got != a+b {
				t.Errorf("%v: %d+%d = %d, want %d", m, a, b, got, a+b)
			}
		}
	}
}

// TestParityTreeGlitches: a parity tree is glitch-prone by construction;
// both models must settle to the correct parity, and DDM must not emit more
// transitions than CDM.
func TestParityTreeGlitches(t *testing.T) {
	ckt, err := circuits.ParityTree(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	init := map[string]bool{}
	bits := map[string]bool{}
	ones := 0
	for i, in := range ckt.Inputs {
		names = append(names, in.Name)
		bits[in.Name] = i%3 != 0
		if bits[in.Name] {
			ones++
		}
	}
	st := applyVector(names, bits, 1, 0.15, init)
	ddm := run(t, ckt, st, 40, DDM)
	cdm := run(t, ckt, st, 40, CDM)
	want := ones%2 == 1
	if got := ddm.OutputLogic(40, vdd/2)["parity"]; got != want {
		t.Errorf("DDM parity = %v, want %v", got, want)
	}
	if got := cdm.OutputLogic(40, vdd/2)["parity"]; got != want {
		t.Errorf("CDM parity = %v, want %v", got, want)
	}
	if ddm.Stats.Transitions > cdm.Stats.Transitions {
		t.Errorf("DDM transitions %d exceed CDM %d", ddm.Stats.Transitions, cdm.Stats.Transitions)
	}
}

// TestC17AllVectors settles every input vector on the ISCAS C17 benchmark.
func TestC17AllVectors(t *testing.T) {
	ckt, err := circuits.C17(lib)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, in := range ckt.Inputs {
		names = append(names, in.Name)
	}
	for mask := 0; mask < 32; mask++ {
		bits := map[string]bool{}
		for i, n := range names {
			bits[n] = mask>>i&1 == 1
		}
		want, err := ckt.EvalBool(bits)
		if err != nil {
			t.Fatal(err)
		}
		st := applyVector(names, bits, 1, 0.15, map[string]bool{})
		res := run(t, ckt, st, 20, DDM)
		got := res.OutputLogic(20, vdd/2)
		for k, v := range want {
			if got[k] != v {
				t.Errorf("mask %05b: %s = %v, want %v", mask, k, got[k], v)
			}
		}
	}
}

// TestCompositeCellsSimulate exercises the logic engine on composite
// (non-primitive) cells, which the analog engine rejects but the event
// kernel must handle.
func TestCompositeCellsSimulate(t *testing.T) {
	b := netlist.NewBuilder("composite", lib)
	b.Input("a")
	b.Input("b")
	b.Input("c")
	b.AddGate("x", cellib.XOR2, "n1", "a", "b")
	b.AddGate("o", cellib.OR3, "n2", "n1", "c", "a")
	b.AddGate("q", cellib.XNOR2, "out", "n2", "b")
	b.Output("out")
	ckt := b.MustBuild()
	for mask := 0; mask < 8; mask++ {
		bits := map[string]bool{
			"a": mask&1 == 1, "b": mask&2 == 2, "c": mask&4 == 4,
		}
		want, err := ckt.EvalBool(bits)
		if err != nil {
			t.Fatal(err)
		}
		st := applyVector([]string{"a", "b", "c"}, bits, 1, 0.2, map[string]bool{})
		res := run(t, ckt, st, 20, DDM)
		if got := res.OutputLogic(20, vdd/2)["out"]; got != want["out"] {
			t.Errorf("mask %d: out = %v, want %v", mask, got, want["out"])
		}
	}
}

// TestMaxEventsGuard aborts runaway simulations.
func TestMaxEventsGuard(t *testing.T) {
	ckt := invChain(t, 2)
	var edges []InputEdge
	for i := 0; i < 50; i++ {
		t0 := 1 + 2*float64(i)
		edges = append(edges,
			InputEdge{Time: t0, Rising: true, Slew: 0.15},
			InputEdge{Time: t0 + 1, Rising: false, Slew: 0.15})
	}
	st := Stimulus{"in": InputWave{Edges: edges}}
	if _, err := New(ckt, Options{MaxEvents: 5}).Run(st, 500); err == nil {
		t.Error("event limit not enforced")
	}
	if _, err := RunClassic(ckt, st, 500, ClassicOptions{MaxEvents: 5}); err == nil {
		t.Error("classic event limit not enforced")
	}
}

// TestMinPulseAblation: the MinPulse clamp trades causal robustness for
// sliver width; the settled logic must be invariant to it.
func TestMinPulseAblation(t *testing.T) {
	ckt, err := circuits.Multiplier4x4(lib)
	if err != nil {
		t.Fatal(err)
	}
	st := mulSequenceStimulus([][2]uint64{{0, 0}, {7, 7}, {5, 0xA}, {0xE, 6}, {0xF, 0xF}}, 5.0, 0.2)
	var products []int
	for _, mp := range []float64{1e-7, 1e-6, 1e-4} {
		res, err := New(ckt, Options{Model: DDM, MinPulse: mp}).Run(st, 28)
		if err != nil {
			t.Fatalf("MinPulse %g: %v", mp, err)
		}
		out := res.OutputLogic(28, vdd/2)
		p := 0
		for k := 0; k < 8; k++ {
			if out[fmt.Sprintf("s%d", k)] {
				p |= 1 << k
			}
		}
		products = append(products, p)
	}
	for i := 1; i < len(products); i++ {
		if products[i] != products[0] {
			t.Errorf("settled product varies with MinPulse: %v", products)
		}
	}
}

// mulSequenceStimulus is a local multiplier vector-sequence builder (the
// stimuli package cannot be imported here without a cycle).
func mulSequenceStimulus(pairs [][2]uint64, period, slew float64) Stimulus {
	st := Stimulus{}
	state := map[string]bool{}
	set := func(name string, v bool, t float64, first bool) {
		w := st[name]
		if first {
			w.Init = v
		} else if state[name] != v {
			w.Edges = append(w.Edges, InputEdge{Time: t, Rising: v, Slew: slew})
		}
		st[name] = w
		state[name] = v
	}
	for k, p := range pairs {
		t := float64(k) * period
		for i := 0; i < 4; i++ {
			set(fmt.Sprintf("a%d", i), p[0]>>i&1 == 1, t, k == 0)
			set(fmt.Sprintf("b%d", i), p[1]>>i&1 == 1, t, k == 0)
		}
	}
	return st
}

// TestEngineOnRandomPrimitiveCircuits cross-checks DDM and CDM settled
// outputs against boolean evaluation on generated netlists.
func TestEngineOnRandomPrimitiveCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		ckt, err := circuits.RandomCombinational(lib, circuits.RandomOptions{
			Inputs: 4, Gates: 25, Seed: int64(trial), PrimitiveOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		bits := map[string]bool{}
		var names []string
		for _, in := range ckt.Inputs {
			names = append(names, in.Name)
			bits[in.Name] = rng.Intn(2) == 1
		}
		want, err := ckt.EvalBool(bits)
		if err != nil {
			t.Fatal(err)
		}
		st := applyVector(names, bits, 1, 0.15, map[string]bool{})
		for _, m := range []Model{DDM, CDM} {
			res := run(t, ckt, st, 60, m)
			got := res.OutputLogic(60, vdd/2)
			for k, v := range want {
				// Outputs that are also primary inputs follow the drive.
				if got[k] != v {
					t.Errorf("trial %d %v: %s = %v, want %v", trial, m, k, got[k], v)
				}
			}
		}
	}
}
