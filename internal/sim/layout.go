package sim

import (
	"halotis/internal/cellib"
	"halotis/internal/netlist"
)

// layout is the immutable, flat, precomputed view of one circuit that the
// simulation engine's hot loop runs against. Everything the kernel needs per
// event — the receiving gate, the pin threshold, the delay-model edge
// parameters, the output net load — is hoisted out of the pointer-rich
// netlist graph into dense index-addressed arrays at construction time, so
// the event loop performs no map lookups, no interface calls and no pointer
// chasing beyond a handful of slab reads.
//
// A layout is read-only after newLayout returns and is therefore safe to
// share between engines, which is how the parallel batch runner amortizes
// precomputation across workers.
//
// Pin addressing: every gate input pin gets a dense global id
//
//	pid = pinStart[gateID] + pinIndex
//
// and all per-pin arrays (pinVT, pinRise, ...) as well as the engine's
// mutable per-pin slabs (input values, pending handles) are indexed by pid.
type layout struct {
	ckt *netlist.Circuit
	vdd float64

	// Per-gate, indexed by gate ID. pinStart has len(gates)+1 entries so
	// pinStart[g] : pinStart[g+1] spans gate g's pins in every pin slab.
	pinStart []int32
	gateKind []cellib.Kind
	gateOut  []int32 // output net ID

	// Per-pin, indexed by global pin id.
	pinGate []int32 // owning gate ID
	pinNet  []int32 // listened net ID
	pinVT   []float64
	pinRise []cellib.EdgeParams
	pinFall []cellib.EdgeParams

	// Per-net, indexed by net ID. fanStart/fanPins is the flattened fanout:
	// fanPins[fanStart[n]:fanStart[n+1]] are the global pin ids listening to
	// net n, in netlist fanout order (which fixes the deterministic event
	// insertion order on simultaneous crossings).
	load     []float64
	fanStart []int32
	fanPins  []int32

	// levelOrder lists gate IDs in topological level order for the settled
	// initial-state evaluation, hoisted here because GatesByLevel sorts.
	levelOrder []int32

	// inputNames supports stimulus validation without per-run map builds.
	inputNames map[string]bool
}

// layoutFor returns the circuit's flattened layout, memoized on the circuit
// itself: every engine over the same circuit — across Simulate calls, batch
// workers and sessions — shares one read-only layout.
func layoutFor(ckt *netlist.Circuit) *layout {
	return ckt.Aux(func() any { return newLayout(ckt) }).(*layout)
}

// newLayout flattens the circuit. Cost is O(gates + pins + nets) and is paid
// once per circuit (see layoutFor), not per run.
func newLayout(ckt *netlist.Circuit) *layout {
	numPins := 0
	for _, g := range ckt.Gates {
		numPins += len(g.Inputs)
	}
	lay := &layout{
		ckt:      ckt,
		vdd:      ckt.Lib.VDD,
		pinStart: make([]int32, len(ckt.Gates)+1),
		gateKind: make([]cellib.Kind, len(ckt.Gates)),
		gateOut:  make([]int32, len(ckt.Gates)),
		pinGate:  make([]int32, numPins),
		pinNet:   make([]int32, numPins),
		pinVT:    make([]float64, numPins),
		pinRise:  make([]cellib.EdgeParams, numPins),
		pinFall:  make([]cellib.EdgeParams, numPins),
		load:     make([]float64, len(ckt.Nets)),
		fanStart: make([]int32, len(ckt.Nets)+1),
		fanPins:  make([]int32, 0, numPins),

		levelOrder: make([]int32, 0, len(ckt.Gates)),
		inputNames: make(map[string]bool, len(ckt.Inputs)),
	}

	pid := int32(0)
	for _, g := range ckt.Gates {
		lay.pinStart[g.ID] = pid
		lay.gateKind[g.ID] = g.Cell.Kind
		lay.gateOut[g.ID] = int32(g.Output.ID)
		for i, p := range g.Inputs {
			lay.pinGate[pid] = int32(g.ID)
			lay.pinNet[pid] = int32(p.Net.ID)
			lay.pinVT[pid] = p.VT
			pp := g.Cell.Pins[i]
			lay.pinRise[pid] = pp.Rise
			lay.pinFall[pid] = pp.Fall
			pid++
		}
	}
	lay.pinStart[len(ckt.Gates)] = pid

	for _, n := range ckt.Nets {
		lay.load[n.ID] = n.Load()
		lay.fanStart[n.ID] = int32(len(lay.fanPins))
		for _, p := range n.Fanout {
			lay.fanPins = append(lay.fanPins, lay.pinStart[p.Gate.ID]+int32(p.Index))
		}
	}
	lay.fanStart[len(ckt.Nets)] = int32(len(lay.fanPins))

	for _, g := range ckt.GatesByLevel() {
		lay.levelOrder = append(lay.levelOrder, int32(g.ID))
	}
	for _, in := range ckt.Inputs {
		lay.inputNames[in.Name] = true
	}
	return lay
}

// numPins returns the total gate-input pin count.
func (lay *layout) numPins() int { return int(lay.pinStart[len(lay.gateKind)]) }
