package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"halotis/internal/circ"
	"halotis/internal/eventq"
	"halotis/internal/wave"
)

// This file is the partitioned parallel kernel: the same Fig. 4 algorithm as
// engine.go, executed by one worker goroutine per circuit partition (see
// circ.Partition), bit-identical to the sequential kernel for any partition
// count. Three properties combine to make that possible:
//
//   - Structural event order. Events are keyed by (time, global pin id), a
//     total order over live events that does not depend on which goroutine
//     scheduled them (see the event type in engine.go). Firing events in
//     that global order — regardless of which per-partition queue they sit
//     in — reproduces the sequential kernel exactly.
//
//   - Acyclic boundary flow. circ.Partition guarantees every boundary net is
//     driven in a lower-numbered partition than all of its off-partition
//     listeners, so messages only flow forward and a partition only ever
//     waits on lower-numbered ones: no cycles, no deadlock.
//
//   - A conservative horizon. Each worker publishes a monotonically
//     non-decreasing clock — a (time, pin) key bounding every event it could
//     still fire or message it could still send. A worker fires only events
//     strictly below the minimum clock of its upstream partitions (its
//     horizon), so no message can retroactively affect anything it already
//     committed. The clock is published as two atomics (pin first, then
//     time; read time first, then pin), which a double-width read may only
//     ever under-estimate — stale reads are conservative, never unsafe.
//
// Boundary messages carry {net, start, slew, v0, rising} — every field of
// wave.Transition that Crossing reads — so the receiving partition
// recomputes threshold-crossing times bit-identically to the sequential
// kernel's in-place computation. Messages for one net originate in exactly
// one partition and mailboxes preserve send order, so per-net truncation
// order is preserved too; pins of different nets carry disjoint state, so
// cross-net apply order is immaterial.
//
// Applying an incoming message eagerly (before local time reaches it) is
// equivalent to the sequential interleaving: a message sent from an upstream
// fire at time t has start > t, can only cancel pending crossings at or
// after start, and can only schedule crossings after start — all strictly
// above the receiver's horizon, hence above anything it has fired.
//
// Shared engine state (waveforms, per-pin values and pending handles,
// per-gate slabs) is safe without locks because every slab index is owned by
// exactly one partition: nets by their driver's partition, pins and gate
// state by the gate's partition.

// MaxPartitions bounds Options.Partitions; requests above it are clamped.
const MaxPartitions = 64

// Auto-partitioning policy for Options.Partitions == 0: circuits below
// autoPartitionMinGates stay on the sequential kernel (its 0-alloc steady
// state is already the fastest path for circuits whose working set fits low
// cache levels), larger ones get one partition per autoPartitionGatesPer
// gates, bounded by GOMAXPROCS and autoPartitionMax.
const (
	autoPartitionMinGates = 50_000
	autoPartitionGatesPer = 25_000
	autoPartitionMax      = 8
)

// resolvePartitions maps the Partitions option to an effective worker count
// for a circuit of the given size.
func resolvePartitions(req, gates int) int {
	if req > 0 {
		if req > MaxPartitions {
			req = MaxPartitions
		}
		return req
	}
	if gates < autoPartitionMinGates {
		return 1
	}
	p := runtime.GOMAXPROCS(0)
	if m := gates / autoPartitionGatesPer; p > m {
		p = m
	}
	if p > autoPartitionMax {
		p = autoPartitionMax
	}
	if p < 1 {
		p = 1
	}
	return p
}

// boundaryMsg is one net transition crossing a partition boundary: the
// Transition fields Crossing reads, so the receiver reconstructs crossing
// times bit-identically.
type boundaryMsg struct {
	net    int32
	rising bool
	start  float64
	slew   float64
	v0     float64
}

// mailbox is an unbounded single-producer single-consumer buffer for one
// boundary edge. Unbounded is a correctness choice, not a convenience: a
// bounded channel would let a sender block on a receiver that is itself
// waiting on its horizon, reintroducing the deadlock the acyclic partition
// order eliminates. The receiver swaps in an empty buffer on every drain, so
// in steady state the two buffers ping-pong with no allocation.
type mailbox struct {
	mu  sync.Mutex
	buf []boundaryMsg
	hw  int // deepest the buffer grew between drains (profiling counter)
}

func (m *mailbox) send(msg boundaryMsg) {
	m.mu.Lock()
	m.buf = append(m.buf, msg)
	if len(m.buf) > m.hw {
		m.hw = len(m.buf)
	}
	m.mu.Unlock()
}

// swap exchanges the mailbox contents for the (empty) spare and returns the
// pending messages in send order.
func (m *mailbox) swap(spare []boundaryMsg) []boundaryMsg {
	m.mu.Lock()
	out := m.buf
	m.buf = spare
	m.mu.Unlock()
	return out
}

// partWorker runs one partition: its own event queue, published clock and
// inbound mailboxes, over the parent engine's shared (index-disjoint) slabs.
type partWorker struct {
	e    *Engine
	pt   *circ.Partitioning
	part int32

	q eventq.ArenaQueue[event]

	// Published clock, split across two atomics. Non-negative float64 bit
	// patterns compare like the floats themselves, so the time is stored as
	// raw bits. Writers store pin then time; readers load time then pin —
	// every torn read then under-estimates the (monotone) clock, which is
	// conservative. See the file comment.
	clockTime atomic.Uint64
	clockPin  atomic.Uint64

	ups    []*partWorker // upstream workers, parallel to pt.Incoming[part]
	inbox  []*mailbox    // inbound edge mailboxes, parallel to ups
	spare  [][]boundaryMsg
	outbox []*mailbox // by destination partition; nil where no edge
	sent   []int32    // scratch: destinations already messaged this emit

	now float64
	st  Stats
	err error

	// Profiling counters (see Profile). Plain fields owned by this worker,
	// counted unconditionally — both sit on cold paths (stalls, boundary
	// sends), never in the per-event loop — and materialized into
	// Result.Profile only when profiling is enabled.
	stallWaits   uint64
	mailboxSends uint64

	pub uint64 // events already published to e.progress (see Engine.SetProgress)
}

// pubProgress flushes this worker's events since the last publish into the
// engine's attached progress counter; workers publish concurrently, each
// tracking its own high-water mark, so the shared counter stays exact.
func (w *partWorker) pubProgress() {
	if p := w.e.progress; p != nil {
		p.Add(w.st.EventsProcessed - w.pub)
		w.pub = w.st.EventsProcessed
	}
}

// partRun is an engine's reusable partitioned-execution state for one
// partition count; rebuilt only when the requested count changes.
type partRun struct {
	pt      *circ.Partitioning
	workers []*partWorker
	pre     Stats         // stimulus-phase counters (applied single-threaded)
	proc    atomic.Uint64 // shared fired-event budget, batch-charged
	abort   atomic.Bool
}

func newPartRun(e *Engine, pt *circ.Partitioning) *partRun {
	k := pt.K
	pr := &partRun{pt: pt, workers: make([]*partWorker, k)}
	for i := 0; i < k; i++ {
		pr.workers[i] = &partWorker{
			e:      e,
			pt:     pt,
			part:   int32(i),
			outbox: make([]*mailbox, k),
		}
	}
	for dst := 0; dst < k; dst++ {
		w := pr.workers[dst]
		ins := pt.Incoming[dst]
		w.ups = make([]*partWorker, len(ins))
		w.inbox = make([]*mailbox, len(ins))
		w.spare = make([][]boundaryMsg, len(ins))
		for j, src := range ins {
			mb := &mailbox{}
			w.ups[j] = pr.workers[src]
			w.inbox[j] = mb
			pr.workers[src].outbox[dst] = mb
		}
	}
	return pr
}

func (pr *partRun) reset() {
	pr.pre = Stats{}
	pr.proc.Store(0)
	pr.abort.Store(false)
	for _, w := range pr.workers {
		w.q.Reset()
		w.now = 0
		w.st = Stats{}
		w.err = nil
		w.stallWaits = 0
		w.mailboxSends = 0
		w.pub = 0
		w.clockPin.Store(0)
		w.clockTime.Store(0)
		for _, mb := range w.inbox {
			mb.buf = mb.buf[:0] // no workers are running between runs
			mb.hw = 0
		}
	}
}

// runPartitioned is RunContext's parallel path; the caller already resolved
// pt with K > 1.
func (e *Engine) runPartitioned(ctx context.Context, st Stimulus, tEnd float64, pt *circ.Partitioning) (*Result, error) {
	//halotis:wallclock Result.Elapsed measures the run for stats; it never feeds simulated time
	start := time.Now()
	e.Reset(st)
	if e.part == nil || e.part.pt != pt {
		e.part = newPartRun(e, pt)
	}
	pr := e.part
	pr.reset()
	e.applyStimulusPartitioned(st, pr)

	var wg sync.WaitGroup
	for _, w := range pr.workers {
		wg.Add(1)
		go func(w *partWorker) {
			defer wg.Done()
			w.run(ctx, pr, tEnd)
		}(w)
	}
	wg.Wait()

	total := pr.pre
	for _, w := range pr.workers {
		queued, _, removed := w.q.Stats()
		if w.err == nil && w.st.EventsFiltered != removed {
			w.err = fmt.Errorf("sim: partition %d filtered-event accounting mismatch: %d vs %d",
				w.part, w.st.EventsFiltered, removed)
		}
		total.EventsQueued += queued
		total.EventsProcessed += w.st.EventsProcessed
		total.EventsFiltered += w.st.EventsFiltered
		total.Evaluations += w.st.Evaluations
		total.Transitions += w.st.Transitions
		total.DegradedTransitions += w.st.DegradedTransitions
		total.FullyDegraded += w.st.FullyDegraded
	}
	for _, w := range pr.workers {
		if w.err != nil {
			return nil, w.err
		}
	}

	e.st = total
	e.res = Result{
		Model: e.opt.Model,
		Stats: e.st,
		//halotis:wallclock Result.Elapsed measures the run for stats; it never feeds simulated time
		Elapsed: time.Since(start),
		EndTime: tEnd,
		ir:      e.ir,
		wfs:     e.wfs,
	}
	if e.profiling {
		prof := &Profile{Partitions: pt.K, Workers: make([]WorkerProfile, len(pr.workers))}
		for i, w := range pr.workers {
			hw := 0
			for _, mb := range w.inbox {
				if mb.hw > hw { // workers have joined; no locks needed
					hw = mb.hw
				}
			}
			prof.Workers[i] = WorkerProfile{
				Partition:        int(w.part),
				EventsProcessed:  w.st.EventsProcessed,
				StallWaits:       w.stallWaits,
				MailboxSends:     w.mailboxSends,
				MailboxHighWater: hw,
			}
		}
		e.res.Profile = prof
	}
	return &e.res, nil
}

// applyStimulusPartitioned mirrors applyStimulus, routing each scheduled
// crossing to its owning partition's queue. It runs single-threaded before
// the workers start, so every partition begins with its externally driven
// events already in place and primary-input nets never generate boundary
// traffic.
func (e *Engine) applyStimulusPartitioned(st Stimulus, pr *partRun) {
	ir := e.ir
	e.names = e.names[:0]
	for name := range st {
		e.names = append(e.names, name)
	}
	slices.Sort(e.names)
	for _, name := range e.names {
		w := st[name]
		net := ir.NetID(name)
		for _, edge := range w.Edges {
			slew := edge.Slew
			if slew <= 0 {
				slew = e.opt.DefaultSlew
			}
			tr := e.wfs[net].Add(edge.Time, slew, edge.Rising)
			pr.pre.Transitions++
			for _, pin := range ir.Fanout(net) {
				wk := pr.workers[pr.pt.GatePart[ir.PinGate[pin]]]
				wk.applyToPin(pin, tr, edge.Time, slew, edge.Rising)
			}
		}
	}
}

// keyLess is the strict (time, pin) order all kernels fire events in.
func keyLess(t1 float64, p1 uint64, t2 float64, p2 uint64) bool {
	if t1 != t2 {
		return t1 < t2
	}
	return p1 < p2
}

// run is the worker main loop: read upstream clocks, drain inboxes, fire
// everything strictly below the horizon, publish the own clock, back off
// when blocked. The clock-then-drain order matters: messages from any
// upstream fire below a clock value are in the mailbox before that clock
// value is published, so draining after the read leaves nothing unseen
// below the horizon.
func (w *partWorker) run(ctx context.Context, pr *partRun, tEnd float64) {
	e := w.e
	// Flush the progress remainder on every exit path (completion, abort,
	// failure) so the attached counter converges on the exact event total.
	defer w.pubProgress()
	idle := 0
	for {
		if pr.abort.Load() {
			return
		}
		hT, hP := w.horizon()
		progressed := w.drainInboxes()

		for {
			t, pin, ok := w.q.PeekKey()
			if !ok || t > tEnd || !keyLess(t, pin, hT, hP) {
				break
			}
			if w.st.EventsProcessed&ctxCheckMask == 0 {
				w.pubProgress()
				if pr.abort.Load() {
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						w.fail(pr, fmt.Errorf("sim: partition %d aborted at t=%g ns after %d events: %w",
							w.part, w.now, w.st.EventsProcessed, err))
						return
					}
				}
				if total := pr.proc.Add(ctxCheckMask + 1); total > e.opt.MaxEvents {
					w.fail(pr, fmt.Errorf("sim: event limit %d exceeded at t=%g ns (oscillation?)",
						e.opt.MaxEvents, w.now))
					return
				}
			}
			h, t, ev, _ := w.q.Pop()
			if t < w.now {
				w.fail(pr, fmt.Errorf("sim: partition %d causality violation: event at %g before now %g",
					w.part, t, w.now))
				return
			}
			w.now = t
			w.st.EventsProcessed++
			w.fire(h, ev)
			w.publish(hT, hP)
			progressed = true
		}

		w.publish(hT, hP)
		if hT > tEnd {
			if t, _, ok := w.q.PeekKey(); !ok || t > tEnd {
				// Horizon and queue are both past the end of time: no
				// upstream can send anything <= tEnd anymore (everything
				// below the horizon read was drained above) and nothing
				// local remains. Leave the clock at +Inf for downstream.
				w.clockPin.Store(0)
				w.clockTime.Store(math.Float64bits(math.Inf(1)))
				return
			}
		}
		if progressed {
			idle = 0
		} else {
			if ctx != nil && ctx.Err() != nil {
				w.fail(pr, fmt.Errorf("sim: partition %d aborted at t=%g ns after %d events: %w",
					w.part, w.now, w.st.EventsProcessed, ctx.Err()))
				return
			}
			w.stallWaits++
			backoff(idle)
			idle++
		}
	}
}

func (w *partWorker) fail(pr *partRun, err error) {
	w.err = err
	pr.abort.Store(true)
}

// horizon returns the minimum published clock over the upstream partitions:
// the strict upper bound on what this worker may fire. No upstreams means no
// bound.
func (w *partWorker) horizon() (float64, uint64) {
	hT, hP := math.Inf(1), ^uint64(0)
	for _, up := range w.ups {
		t := math.Float64frombits(up.clockTime.Load())
		p := up.clockPin.Load()
		if keyLess(t, p, hT, hP) {
			hT, hP = t, p
		}
	}
	return hT, hP
}

// publish advances the worker's clock to min(queue head, horizon): the
// smallest key this partition could still fire — and hence the smallest key
// any message it has yet to send could carry. Both inputs are monotone, so
// the published clock never regresses.
func (w *partWorker) publish(hT float64, hP uint64) {
	t, p, ok := w.q.PeekKey()
	if !ok {
		t, p = math.Inf(1), 0
	}
	if keyLess(hT, hP, t, p) {
		t, p = hT, hP
	}
	w.clockPin.Store(p)
	w.clockTime.Store(math.Float64bits(t))
}

// drainInboxes applies every pending boundary message and reports whether
// there were any.
func (w *partWorker) drainInboxes() bool {
	ir := w.e.ir
	progressed := false
	for i, mb := range w.inbox {
		msgs := mb.swap(w.spare[i][:0])
		for mi := range msgs {
			m := &msgs[mi]
			tr := wave.Transition{
				Start:  m.start,
				Slew:   m.slew,
				V0:     m.v0,
				Rising: m.rising,
				VDD:    ir.VDD,
				End:    math.Inf(1),
			}
			for _, pin := range ir.Fanout(m.net) {
				if w.pt.GatePart[ir.PinGate[pin]] != w.part {
					continue
				}
				w.applyToPin(pin, &tr, m.start, m.slew, m.rising)
			}
			progressed = true
		}
		w.spare[i] = msgs[:0]
	}
	return progressed
}

// applyToPin reconciles one fanout pin against a new transition on its net —
// the per-pin body of Engine.emit (rules 1 and 2 of Fig. 4), against this
// partition's queue. Any change here must be mirrored there.
func (w *partWorker) applyToPin(pin int32, tr *wave.Transition, start, slew float64, rising bool) {
	e := w.e
	if h := e.pending[pin]; h != eventq.NoHandle {
		if pt, live := w.q.TimeOf(h); !live {
			e.pending[pin] = eventq.NoHandle
		} else if pt >= start {
			w.q.Remove(h)
			w.st.EventsFiltered++
			e.pending[pin] = eventq.NoHandle
		}
	}
	ct, ok := tr.Crossing(e.ir.PinVT[pin])
	if !ok {
		return
	}
	if h := e.pending[pin]; h != eventq.NoHandle {
		if pt, live := w.q.TimeOf(h); live && ct <= pt {
			w.q.Remove(h)
			w.st.EventsFiltered++
			e.pending[pin] = eventq.NoHandle
			return
		}
	}
	e.pending[pin] = w.q.PushKeyed(ct, uint64(uint32(pin)), event{pin: pin, rising: rising, slew: slew})
}

// emit is the partitioned counterpart of Engine.emit: append the transition
// to the net's waveform (the net is owned by this partition), reconcile
// local fanout pins directly and send one message per off-partition
// destination. Any change here must be mirrored in Engine.emit.
func (w *partWorker) emit(net int32, start, slew float64, rising bool) {
	e := w.e
	ir := e.ir
	tr := e.wfs[net].Add(start, slew, rising)
	w.st.Transitions++
	sent := w.sent[:0]
	for _, pin := range ir.Fanout(net) {
		dst := w.pt.GatePart[ir.PinGate[pin]]
		if dst == w.part {
			w.applyToPin(pin, tr, start, slew, rising)
			continue
		}
		dup := false
		for _, s := range sent {
			if s == dst {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		sent = append(sent, dst)
		w.mailboxSends++
		w.outbox[dst].send(boundaryMsg{net: net, rising: rising, start: start, slew: slew, v0: tr.V0})
	}
	w.sent = sent[:0]
}

// fire mirrors Engine.fire over the shared slabs, with output emission going
// through the partitioned emit. Any change here must be mirrored there.
func (w *partWorker) fire(h eventq.Handle, ev event) {
	e := w.e
	ir := e.ir
	pin := ev.pin
	g := ir.PinGate[pin]
	if e.pending[pin] == h {
		e.pending[pin] = eventq.NoHandle
	}
	e.inVals[pin] = ev.rising

	w.st.Evaluations++
	a, b := ir.PinStart[g], ir.PinStart[g+1]
	newTarget := ir.GateKind[g].Eval(e.inVals[a:b])
	if newTarget == e.outTarget[g] {
		return
	}

	out := ir.GateOut[g]
	res := e.delayFor(g, pin, out, ev, w.now, newTarget)
	if res.Filtered {
		w.st.FullyDegraded++
	} else if res.Degraded {
		w.st.DegradedTransitions++
	}

	tp := math.Max(res.Tp, e.opt.MinPulse)
	start := w.now + tp
	if min := e.lastOutStart[g] + e.opt.MinPulse; start < min {
		start = min
	}

	e.outTarget[g] = newTarget
	e.lastOutStart[g] = start
	w.emit(out, start, res.Slew, newTarget)
}

// backoff yields while the horizon is stalled: a handful of scheduler yields
// first (essential at GOMAXPROCS=1, where the upstream producer can only run
// if we give up the processor), then escalating sleeps capped at 256µs so a
// long-stalled worker costs nothing measurable.
func backoff(n int) {
	if n < 8 {
		runtime.Gosched()
		return
	}
	shift := n - 8
	if shift > 8 {
		shift = 8
	}
	time.Sleep(time.Duration(1<<uint(shift)) * time.Microsecond)
}
