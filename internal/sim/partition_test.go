package sim_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"halotis/internal/cellib"
	"halotis/internal/circuits"
	"halotis/internal/netlist"
	"halotis/internal/sim"
	"halotis/internal/stimuli"
)

// comparePartitioned runs the circuit sequentially and with the given
// partition count and asserts bit-identical stats and waveforms.
// requireEvents additionally rejects workloads where nothing fired — wanted
// for curated workloads, wrong for fuzz inputs (a one-vector stimulus can
// legitimately produce no edges at all).
func comparePartitioned(t *testing.T, label string, ckt *netlist.Circuit, st sim.Stimulus, tEnd float64, m sim.Model, parts int, requireEvents bool) {
	t.Helper()
	seq, err := sim.NewEngine(ckt, sim.Options{Model: m, Partitions: 1}).Run(st, tEnd)
	if err != nil {
		t.Fatalf("%s: sequential: %v", label, err)
	}
	par, err := sim.NewEngine(ckt, sim.Options{Model: m, Partitions: parts}).Run(st, tEnd)
	if err != nil {
		t.Fatalf("%s: partitioned P=%d: %v", label, parts, err)
	}
	if seq.Stats != par.Stats {
		t.Fatalf("%s: P=%d stats differ:\n sequential  %+v\n partitioned %+v", label, parts, seq.Stats, par.Stats)
	}
	if requireEvents && seq.Stats.EventsProcessed == 0 {
		t.Fatalf("%s: degenerate workload, nothing simulated", label)
	}
	for _, n := range ckt.Nets {
		gt := seq.Waveform(n.Name).Transitions()
		pt := par.Waveform(n.Name).Transitions()
		if len(gt) != len(pt) {
			t.Fatalf("%s: P=%d net %s transition count %d != %d", label, parts, n.Name, len(gt), len(pt))
		}
		for i := range gt {
			if gt[i] != pt[i] {
				t.Fatalf("%s: P=%d net %s transition %d differs:\n sequential  %v\n partitioned %v",
					label, parts, n.Name, i, &gt[i], &pt[i])
			}
		}
	}
}

// TestPartitionedMatchesSequential is the parallel kernel's differential
// guard: every scalable family plus the paper circuits, both delay models,
// several partition counts — all bit-identical to the sequential kernel
// (which TestFamiliesMatchReference in turn pins to the reference kernel).
// The CI race job runs this under -race, making it the data-race proof too.
func TestPartitionedMatchesSequential(t *testing.T) {
	lib := cellib.Default06()
	type workload struct {
		name string
		ckt  *netlist.Circuit
	}
	var wls []workload
	for _, fam := range circuits.ScalableFamilies() {
		ckt, err := fam.Build(lib, 250)
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		wls = append(wls, workload{fam.Name, ckt})
	}
	fig1, err := circuits.Figure1(lib)
	if err != nil {
		t.Fatal(err)
	}
	wls = append(wls, workload{"figure1", fig1})
	c17, err := circuits.C17(lib)
	if err != nil {
		t.Fatal(err)
	}
	wls = append(wls, workload{"c17", c17})

	const (
		vectors = 6
		period  = 5.0
		slew    = 0.2
		tEnd    = period * (vectors + 1)
	)
	for _, wl := range wls {
		st, err := stimuli.RandomStimulusFor(wl.ckt, vectors, period, slew, 99)
		if err != nil {
			t.Fatalf("%s: stimulus: %v", wl.name, err)
		}
		for _, m := range []sim.Model{sim.DDM, sim.CDM} {
			// 63 partitions exceeds the gate count of c17 and figure1,
			// covering the clamp-to-NumGates path.
			for _, parts := range []int{2, 4, 63} {
				label := fmt.Sprintf("%s/%v", wl.name, m)
				comparePartitioned(t, label, wl.ckt, st, tEnd, m, parts, true)
			}
		}
	}
}

// TestPartitionedEngineReuse checks the partitioned path keeps the engine
// contract: repeated runs on one engine, including switching partition
// counts between runs, all reproduce the sequential result.
func TestPartitionedEngineReuse(t *testing.T) {
	lib := cellib.Default06()
	ckt, err := circuits.RandomCombinational(lib, circuits.RandomOptions{Inputs: 16, Gates: 600, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stimuli.RandomStimulusFor(ckt, 5, 4.0, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	const tEnd = 30.0
	want, err := sim.NewEngine(ckt, sim.Options{}).Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	wantStats := want.Stats

	eng := sim.NewEngine(ckt, sim.Options{Partitions: 4})
	for run := 0; run < 3; run++ {
		got, err := eng.Run(st, tEnd)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if got.Stats != wantStats {
			t.Fatalf("run %d: stats drifted:\n got  %+v\n want %+v", run, got.Stats, wantStats)
		}
	}
}

// TestPartitionedCancellation builds a 100k-gate circuit, cancels a
// partitioned run mid-flight, and asserts the run returns promptly with the
// context error and that the engine remains usable afterwards — the
// per-worker cancellation check of the partitioned path.
func TestPartitionedCancellation(t *testing.T) {
	lib := cellib.Default06()
	ckt, err := circuits.RandomCombinational(lib, circuits.RandomOptions{Inputs: 256, Gates: 100_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stimuli.RandomStimulusFor(ckt, 40, 4.0, 0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ckt, sim.Options{Partitions: 4})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	_, err = eng.RunContext(ctx, st, 4.0*41)
	took := time.Since(begin)
	if err == nil {
		t.Skip("run finished before cancellation; machine too fast for this workload")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if took > 5*time.Second {
		t.Fatalf("canceled run took %v to return", took)
	}

	// The engine must be fully reusable: a short run afterwards succeeds
	// and matches a fresh engine bit-for-bit.
	short, err := stimuli.RandomStimulusFor(ckt, 2, 4.0, 0.2, 17)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunContext(context.Background(), short, 12.0)
	if err != nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
	want, err := sim.NewEngine(ckt, sim.Options{Partitions: 4}).Run(short, 12.0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Fatalf("post-cancel run diverged:\n got  %+v\n want %+v", got.Stats, want.Stats)
	}
}

// FuzzPartitionedIdentity fuzzes random DAG shapes, partition counts and
// stimulus seeds, asserting the partitioned kernel stays bit-identical to
// the sequential one on every input.
func FuzzPartitionedIdentity(f *testing.F) {
	f.Add(int64(1), uint16(60), uint8(3), uint8(3))
	f.Add(int64(2), uint16(200), uint8(2), uint8(1))
	f.Add(int64(3), uint16(350), uint8(5), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, gates uint16, parts, vectors uint8) {
		lib := cellib.Default06()
		g := 10 + int(gates)%400
		p := 2 + int(parts)%5
		v := 1 + int(vectors)%4
		ckt, err := circuits.RandomCombinational(lib, circuits.RandomOptions{Inputs: 8, Gates: g, Seed: seed})
		if err != nil {
			t.Skip()
		}
		st, err := stimuli.RandomStimulusFor(ckt, v, 4.0, 0.2, seed+1)
		if err != nil {
			t.Skip()
		}
		tEnd := 4.0 * float64(v+1)
		for _, m := range []sim.Model{sim.DDM, sim.CDM} {
			comparePartitioned(t, fmt.Sprintf("seed=%d g=%d %v", seed, g, m), ckt, st, tEnd, m, p, false)
		}
	})
}
