package sim

import (
	"sync"
	"sync/atomic"

	"halotis/internal/circ"
)

// PoolKey is the comparable options key an engine pool is selected by:
// engines prepared with different delay models, kernel limits or partition
// counts are not interchangeable (a partitioned engine carries per-partition
// queues and mailboxes sized to its count), everything else (context, worker
// count) is per-run. Partitions changes how a result is computed, never what
// it is — the service's result-cache key deliberately excludes it.
type PoolKey struct {
	Model      Model
	MinPulse   float64
	MaxEvents  uint64
	Partitions int
}

// PoolKey normalizes the options onto a pool key: explicit spellings of
// the engine defaults map onto the same key as omitting them, so
// "MaxEvents omitted" and "MaxEvents: 50000000" share a warm-engine free
// list. Partitions is clamped to [0, MaxPartitions], with 0 (auto) kept
// distinct from explicit counts.
func (o Options) PoolKey() PoolKey {
	k := PoolKey{Model: o.Model, MinPulse: o.MinPulse, MaxEvents: o.MaxEvents, Partitions: o.Partitions}
	if k.MinPulse <= 0 {
		k.MinPulse = DefaultMinPulse
	}
	if k.MaxEvents == 0 {
		k.MaxEvents = DefaultMaxEvents
	}
	if k.Partitions < 0 {
		k.Partitions = 0
	}
	if k.Partitions > MaxPartitions {
		k.Partitions = MaxPartitions
	}
	return k
}

// Options expands the key back into engine options.
func (k PoolKey) Options() Options {
	return Options{Model: k.Model, MinPulse: k.MinPulse, MaxEvents: k.MaxEvents, Partitions: k.Partitions}
}

// maxEnginePoolKeys bounds the distinct options keys one pool retains warm
// engines for; see the EnginePool comment.
const maxEnginePoolKeys = 8

// EnginePool keeps warm, reusable Engine instances for one compiled
// circuit, one free list per options key. After a pool's engines have been
// through a warm-up run, steady-state traffic acquires an engine whose
// buffers are already grown — the zero-allocation reuse path — instead of
// paying engine construction and buffer growth per request. It is safe for
// concurrent use; the engines it hands out are not (one per goroutine).
//
// The free lists are bounded two ways: at most max engines are retained
// per options key, and at most maxEnginePoolKeys distinct keys retain
// engines at all (callers sweeping MaxEvents/MinPulse values cannot grow
// the map without bound — exotic keys still run, their engines just go to
// the GC on release). Releases beyond either bound drop the engine.
type EnginePool struct {
	mu      sync.Mutex
	ir      *circ.Compiled
	max     int
	free    map[PoolKey][]*Engine
	created *atomic.Uint64
	own     atomic.Uint64
}

// NewEnginePool builds a pool over a compiled circuit retaining at most
// max free engines per options key. created, when non-nil, is incremented
// for every engine the pool constructs (callers aggregating a counter
// across pools); the pool always counts into its own Created() as well.
func NewEnginePool(ir *circ.Compiled, max int, created *atomic.Uint64) *EnginePool {
	return &EnginePool{ir: ir, max: max, free: make(map[PoolKey][]*Engine), created: created}
}

// IR returns the compiled circuit the pool's engines run against.
func (p *EnginePool) IR() *circ.Compiled { return p.ir }

// Created reports how many engines this pool has constructed; flat under
// steady-state traffic once the pool is warm.
func (p *EnginePool) Created() uint64 { return p.own.Load() }

// Acquire pops a warm engine for the options key, or builds one.
//
//halotis:noalloc
func (p *EnginePool) Acquire(k PoolKey) *Engine {
	p.mu.Lock()
	free := p.free[k]
	if n := len(free); n > 0 {
		eng := free[n-1]
		free[n-1] = nil
		p.free[k] = free[:n-1]
		p.mu.Unlock()
		return eng
	}
	p.mu.Unlock()
	p.own.Add(1)
	if p.created != nil {
		p.created.Add(1)
	}
	return NewEngineFromIR(p.ir, k.Options())
}

// Release returns an engine to its free list (or drops it when the per-key
// list, or the key count itself, is at its bound).
//
//halotis:noalloc
func (p *EnginePool) Release(k PoolKey, eng *Engine) {
	p.mu.Lock()
	free, ok := p.free[k]
	if !ok && len(p.free) >= maxEnginePoolKeys {
		p.mu.Unlock()
		return
	}
	if len(free) < p.max {
		p.free[k] = append(free, eng)
	}
	p.mu.Unlock()
}

// keyCount reports the distinct options keys currently retaining engines
// (tests pin the maxEnginePoolKeys bound through it).
func (p *EnginePool) keyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// freeCount reports the free engines retained for one key.
func (p *EnginePool) freeCount(k PoolKey) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free[k])
}
