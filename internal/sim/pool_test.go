package sim

import (
	"testing"

	"halotis/internal/cellib"
	"halotis/internal/circ"
	"halotis/internal/circuits"
)

func poolTestIR(t *testing.T) *circ.Compiled {
	t.Helper()
	ckt, err := circuits.C17(cellib.Default06())
	if err != nil {
		t.Fatal(err)
	}
	return circ.Compile(ckt)
}

// poolStimulus builds a small drive over the circuit's primary inputs.
func poolStimulus(ir *circ.Compiled) Stimulus {
	st := Stimulus{}
	for i, in := range ir.Inputs {
		st[ir.NetName[in]] = InputWave{Edges: []InputEdge{
			{Time: 2 + float64(i), Rising: true, Slew: 0.2},
			{Time: 12 + float64(i), Rising: false, Slew: 0.2},
		}}
	}
	return st
}

func TestEnginePoolReuse(t *testing.T) {
	p := NewEnginePool(poolTestIR(t), 2, nil)
	key := Options{Model: DDM}.PoolKey()
	st := poolStimulus(p.IR())

	// Sequential steady-state traffic must construct exactly one engine.
	for i := 0; i < 16; i++ {
		eng := p.Acquire(key)
		if _, err := eng.RunContext(nil, st, 30); err != nil {
			t.Fatal(err)
		}
		p.Release(key, eng)
	}
	if created := p.Created(); created != 1 {
		t.Errorf("16 sequential runs created %d engines, want 1", created)
	}

	// A different options key gets its own free list.
	cdm := Options{Model: CDM}.PoolKey()
	p.Release(cdm, p.Acquire(cdm))
	if created := p.Created(); created != 2 {
		t.Errorf("engines created = %d after CDM acquire, want 2", created)
	}
}

func TestEnginePoolSteadyStateAllocs(t *testing.T) {
	p := NewEnginePool(poolTestIR(t), 2, nil)
	key := Options{Model: DDM}.PoolKey()
	st := poolStimulus(p.IR())

	// Warm-up: grow the engine's buffers and seed the pool.
	eng := p.Acquire(key)
	if _, err := eng.RunContext(nil, st, 30); err != nil {
		t.Fatal(err)
	}
	p.Release(key, eng)

	//halotis:pins Acquire RunContext Release
	allocs := testing.AllocsPerRun(50, func() {
		eng := p.Acquire(key)
		if _, err := eng.RunContext(nil, st, 30); err != nil {
			t.Fatal(err)
		}
		p.Release(key, eng)
	})
	if allocs != 0 {
		t.Errorf("steady-state acquire/run/release allocates %.1f objects per request, want 0", allocs)
	}
}

func TestPoolKeyNormalized(t *testing.T) {
	// Spelling out the engine defaults must map onto the same pool key as
	// omitting them, so mixed traffic shares one warm-engine free list.
	implicit := Options{}.PoolKey()
	explicit := Options{MaxEvents: DefaultMaxEvents, MinPulse: DefaultMinPulse}.PoolKey()
	if implicit != explicit {
		t.Errorf("default spellings diverge: %+v vs %+v", implicit, explicit)
	}
	if custom := (Options{MaxEvents: 1000}).PoolKey(); custom == implicit {
		t.Error("non-default MaxEvents collapsed onto the default key")
	}
	// The key round-trips into runnable options.
	if o := explicit.Options(); o.MaxEvents != DefaultMaxEvents || o.MinPulse != DefaultMinPulse {
		t.Errorf("PoolKey.Options lost the limits: %+v", o)
	}
}

func TestEnginePoolKeyCountBounded(t *testing.T) {
	p := NewEnginePool(poolTestIR(t), 2, nil)
	// A caller sweeping MaxEvents must not grow the free-list map without
	// bound: beyond maxEnginePoolKeys keys, released engines are dropped.
	for i := 1; i <= 4*maxEnginePoolKeys; i++ {
		k := Options{Model: DDM, MaxEvents: uint64(i)}.PoolKey()
		p.Release(k, p.Acquire(k))
	}
	if keys := p.keyCount(); keys > maxEnginePoolKeys {
		t.Errorf("pool retains %d keys, bound is %d", keys, maxEnginePoolKeys)
	}
}

func TestEnginePoolBounded(t *testing.T) {
	p := NewEnginePool(poolTestIR(t), 2, nil)
	key := Options{Model: DDM}.PoolKey()
	a := p.Acquire(key)
	b := p.Acquire(key)
	d := p.Acquire(key)
	p.Release(key, a)
	p.Release(key, b)
	p.Release(key, d) // beyond the bound: dropped
	if n := p.freeCount(key); n != 2 {
		t.Errorf("pool retained %d engines, bound is 2", n)
	}
}
