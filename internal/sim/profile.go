package sim

// Profile is the opt-in per-run kernel execution profile: one entry per
// partition worker (sequential runs report a single worker). It is
// materialized only when profiling was enabled (Options.Profile or
// Engine.SetProfiling), so the default path keeps the kernel's
// zero-allocation steady state. The underlying counters are plain fields
// each worker already owns — counting them is a handful of integer
// increments on paths that are not per-event hot (stalls and boundary
// sends), so profiling costs nothing measurable even when on.
type Profile struct {
	// Partitions is the effective partition count of the run (1 for the
	// sequential kernel).
	Partitions int
	// Workers holds per-partition counters, indexed by partition.
	Workers []WorkerProfile
}

// WorkerProfile is one partition worker's counters for one run.
type WorkerProfile struct {
	// Partition is the worker's partition index.
	Partition int
	// EventsProcessed counts events this worker popped and evaluated —
	// the per-partition split of Stats.EventsProcessed, exposing load
	// imbalance across partitions.
	EventsProcessed uint64
	// StallWaits counts backoff waits taken while the worker's horizon
	// was blocked on an upstream partition: the partitioned kernel's
	// idle time in units of waits. High values on one partition point at
	// a slow upstream or an unbalanced cut.
	StallWaits uint64
	// MailboxSends counts boundary messages this worker sent to
	// downstream partitions.
	MailboxSends uint64
	// MailboxHighWater is the deepest any of this worker's inbound
	// mailboxes grew between drains — sustained high water means the
	// worker drains slower than its upstreams produce.
	MailboxHighWater int
}
