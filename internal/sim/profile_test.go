package sim_test

import (
	"testing"

	"halotis/internal/cellib"
	"halotis/internal/circuits"
	"halotis/internal/sim"
	"halotis/internal/stimuli"
)

// profileWorkload is a circuit busy enough that every partition of a
// 4-way cut processes events.
func profileWorkload(t *testing.T) (*sim.Engine, func(parts int) *sim.Engine, sim.Stimulus, float64) {
	t.Helper()
	lib := cellib.Default06()
	ckt, err := circuits.RandomCombinational(lib, circuits.RandomOptions{Inputs: 16, Gates: 600, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stimuli.RandomStimulusFor(ckt, 5, 4.0, 0.2, 33)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(parts int) *sim.Engine {
		return sim.NewEngine(ckt, sim.Options{Partitions: parts, Profile: true})
	}
	return mk(1), mk, st, 30.0
}

// TestProfileSequential: a profiled sequential run reports one worker
// whose event count is exactly the run's Stats.EventsProcessed.
func TestProfileSequential(t *testing.T) {
	eng, _, st, tEnd := profileWorkload(t)
	res, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("profiled run returned no Profile")
	}
	if p.Partitions != 1 || len(p.Workers) != 1 {
		t.Fatalf("sequential profile = %d partitions, %d workers, want 1/1", p.Partitions, len(p.Workers))
	}
	w := p.Workers[0]
	if w.Partition != 0 {
		t.Errorf("worker partition = %d, want 0", w.Partition)
	}
	if w.EventsProcessed != res.Stats.EventsProcessed {
		t.Errorf("worker events = %d, want Stats.EventsProcessed %d", w.EventsProcessed, res.Stats.EventsProcessed)
	}
	if w.StallWaits != 0 || w.MailboxSends != 0 || w.MailboxHighWater != 0 {
		t.Errorf("sequential worker has partition-only counters: %+v", w)
	}
}

// TestProfilePartitioned: a profiled partitioned run reports one worker
// per partition whose event counts sum to the run's total, boundary sends
// happen (the cut is real), and the counters reset between runs on a
// reused engine.
func TestProfilePartitioned(t *testing.T) {
	_, mk, st, tEnd := profileWorkload(t)
	const parts = 4
	eng := mk(parts)
	res, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("profiled run returned no Profile")
	}
	if p.Partitions != parts || len(p.Workers) != parts {
		t.Fatalf("profile = %d partitions, %d workers, want %d/%d", p.Partitions, len(p.Workers), parts, parts)
	}
	var sum, sends uint64
	for i, w := range p.Workers {
		if w.Partition != i {
			t.Errorf("worker %d labeled partition %d", i, w.Partition)
		}
		sum += w.EventsProcessed
		sends += w.MailboxSends
	}
	if sum != res.Stats.EventsProcessed {
		t.Errorf("per-worker events sum to %d, want Stats.EventsProcessed %d", sum, res.Stats.EventsProcessed)
	}
	if sends == 0 {
		t.Error("no mailbox sends across a 4-way cut of a connected circuit")
	}

	// Reuse: the same run on the same engine reports identical event
	// splits (the counters reset, they don't accumulate).
	again, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Workers {
		if got, want := again.Profile.Workers[i].EventsProcessed, p.Workers[i].EventsProcessed; got != want {
			t.Errorf("worker %d events drifted across reuse: %d then %d", i, want, got)
		}
	}
}

// TestProfileOffIsFree: without profiling the result carries no profile,
// and toggling profiling on and back off (what the pooled per-request path
// does) returns the engine to the zero-allocation steady state.
func TestProfileOffIsFree(t *testing.T) {
	lib := cellib.Default06()
	ckt, err := circuits.RandomCombinational(lib, circuits.RandomOptions{Inputs: 8, Gates: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stimuli.RandomStimulusFor(ckt, 3, 4.0, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ckt, sim.Options{})
	res, err := eng.Run(st, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatal("unprofiled run returned a Profile")
	}

	// One profiled request in the middle, as the engine pool does it.
	eng.SetProfiling(true)
	res, err = eng.Run(st, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("SetProfiling(true) run returned no Profile")
	}
	eng.SetProfiling(false)

	//halotis:pins Run
	allocs := testing.AllocsPerRun(20, func() {
		res, err := eng.Run(st, 20)
		if err != nil {
			t.Fatal(err)
		}
		if res.Profile != nil {
			t.Fatal("profiling stayed on after SetProfiling(false)")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state allocs/run after a profiled run = %g, want 0", allocs)
	}
}
