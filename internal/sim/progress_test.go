package sim_test

import (
	"sync/atomic"
	"testing"

	"halotis/internal/cellib"
	"halotis/internal/circuits"
	"halotis/internal/sim"
	"halotis/internal/stimuli"
)

func progressWorkload(t *testing.T, parts int) (*sim.Engine, sim.Stimulus, float64) {
	t.Helper()
	lib := cellib.Default06()
	ckt, err := circuits.RandomCombinational(lib, circuits.RandomOptions{Inputs: 16, Gates: 600, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stimuli.RandomStimulusFor(ckt, 5, 4.0, 0.2, 33)
	if err != nil {
		t.Fatal(err)
	}
	return sim.NewEngine(ckt, sim.Options{Partitions: parts}), st, 30.0
}

// TestProgressSequentialExact: an attached progress counter converges on
// exactly Stats.EventsProcessed after a sequential run, and accumulates
// across reuse.
func TestProgressSequentialExact(t *testing.T) {
	eng, st, tEnd := progressWorkload(t, 1)
	var c atomic.Uint64
	eng.SetProgress(&c)
	res, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EventsProcessed == 0 {
		t.Fatal("workload processed no events")
	}
	if got := c.Load(); got != res.Stats.EventsProcessed {
		t.Fatalf("progress = %d, want %d", got, res.Stats.EventsProcessed)
	}
	// A second run on the reused engine adds its own exact total.
	res2, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Load(), res.Stats.EventsProcessed+res2.Stats.EventsProcessed; got != want {
		t.Fatalf("progress after reuse = %d, want %d", got, want)
	}
}

// TestProgressPartitionedExact: partitioned workers publish concurrently
// yet the counter still lands on the exact total.
func TestProgressPartitionedExact(t *testing.T) {
	eng, st, tEnd := progressWorkload(t, 4)
	var c atomic.Uint64
	eng.SetProgress(&c)
	res, err := eng.Run(st, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EventsProcessed == 0 {
		t.Fatal("workload processed no events")
	}
	if got := c.Load(); got != res.Stats.EventsProcessed {
		t.Fatalf("progress = %d, want %d", got, res.Stats.EventsProcessed)
	}
}

// TestProgressDetach: SetProgress(nil) restores the unobserved path.
func TestProgressDetach(t *testing.T) {
	eng, st, tEnd := progressWorkload(t, 1)
	var c atomic.Uint64
	eng.SetProgress(&c)
	if _, err := eng.Run(st, tEnd); err != nil {
		t.Fatal(err)
	}
	before := c.Load()
	eng.SetProgress(nil)
	if _, err := eng.Run(st, tEnd); err != nil {
		t.Fatal(err)
	}
	if got := c.Load(); got != before {
		t.Fatalf("detached counter moved: %d -> %d", before, got)
	}
}
