// The differential reference kernel: a deliberately naive, pointer-chasing
// implementation of the HALOTIS Fig. 4 algorithm that walks the netlist
// graph directly — maps keyed by *Pin/*Gate, per-event fanout traversal,
// loads recomputed on the fly — exactly the access pattern the compiled IR
// (internal/circ) replaced. It exists so refactors of the production engine
// can be checked bit-identical against the pre-refactor evaluation order:
// both kernels share the delay functions and the deterministic (time, pin)
// event queue, so any divergence in waveforms or counters is an engine bug,
// not float noise.
//
// Both kernels order same-time events by the structural global pin id (gate
// level order, then pin index). The reference computes that numbering here,
// straight off the netlist, so it shares no code with internal/circ's
// equivalent layout.
package sim_test

import (
	"fmt"
	"math"
	"slices"

	"halotis/internal/cellib"
	"halotis/internal/delay"
	"halotis/internal/eventq"
	"halotis/internal/netlist"
	"halotis/internal/sim"
	"halotis/internal/wave"
)

// Defaults mirroring sim.Options.setDefaults; the differential tests run
// both kernels at these settings.
const (
	refMinPulse    = 1e-6
	refMaxEvents   = 50_000_000
	refDefaultSlew = 0.5
)

type refEvent struct {
	pin    *netlist.Pin
	rising bool
	slew   float64
}

// refResult carries the reference kernel's outcome for comparison.
type refResult struct {
	stats sim.Stats
	wfs   map[string]*wave.Waveform
}

type refKernel struct {
	ckt *netlist.Circuit
	mdl sim.Model
	vdd float64

	q            eventq.ArenaQueue[refEvent]
	pinID        map[*netlist.Pin]uint64
	wfs          map[*netlist.Net]*wave.Waveform
	inVals       map[*netlist.Pin]bool
	pending      map[*netlist.Pin]eventq.Handle
	outTarget    map[*netlist.Gate]bool
	lastOutStart map[*netlist.Gate]float64

	now float64
	st  sim.Stats
}

// referenceRun simulates the stimulus with the reference kernel.
func referenceRun(ckt *netlist.Circuit, st sim.Stimulus, tEnd float64, mdl sim.Model) (*refResult, error) {
	k := &refKernel{
		ckt: ckt, mdl: mdl, vdd: ckt.Lib.VDD,
		pinID:        make(map[*netlist.Pin]uint64),
		wfs:          make(map[*netlist.Net]*wave.Waveform),
		inVals:       make(map[*netlist.Pin]bool),
		pending:      make(map[*netlist.Pin]eventq.Handle),
		outTarget:    make(map[*netlist.Gate]bool),
		lastOutStart: make(map[*netlist.Gate]float64),
	}

	// Structural pin ids: gates in level order, pins in index order.
	pid := uint64(0)
	for _, g := range ckt.GatesByLevel() {
		for _, p := range g.Inputs {
			k.pinID[p] = pid
			pid++
		}
	}

	// Settled boolean solution of the initial input levels.
	vals := make(map[*netlist.Net]bool)
	for _, in := range ckt.Inputs {
		vals[in] = st[in.Name].Init
	}
	for _, g := range ckt.GatesByLevel() {
		args := make([]bool, len(g.Inputs))
		for i, p := range g.Inputs {
			k.inVals[p] = vals[p.Net]
			args[i] = vals[p.Net]
		}
		vals[g.Output] = g.Eval(args)
	}
	for _, n := range ckt.Nets {
		v0 := 0.0
		if vals[n] {
			v0 = k.vdd
		}
		k.wfs[n] = wave.NewWaveform(k.vdd, v0)
	}
	for _, g := range ckt.Gates {
		k.outTarget[g] = vals[g.Output]
		k.lastOutStart[g] = math.Inf(-1)
	}

	// Stimulus edges in deterministic sorted-name order.
	names := make([]string, 0, len(st))
	for name := range st {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		net := ckt.NetByName(name)
		if net == nil {
			return nil, fmt.Errorf("ref: unknown input %q", name)
		}
		for _, edge := range st[name].Edges {
			slew := edge.Slew
			if slew <= 0 {
				slew = refDefaultSlew
			}
			k.emit(net, edge.Time, slew, edge.Rising)
		}
	}

	for {
		tNext, ok := k.q.PeekTime()
		if !ok || tNext > tEnd {
			break
		}
		h, t, ev, _ := k.q.Pop()
		if t < k.now {
			return nil, fmt.Errorf("ref: causality violation at %g", t)
		}
		k.now = t
		k.st.EventsProcessed++
		if k.st.EventsProcessed > refMaxEvents {
			return nil, fmt.Errorf("ref: event limit exceeded")
		}
		k.fire(h, ev)
	}

	queued, _, removed := k.q.Stats()
	k.st.EventsQueued = queued
	if k.st.EventsFiltered != removed {
		return nil, fmt.Errorf("ref: filtered accounting mismatch: %d vs %d", k.st.EventsFiltered, removed)
	}
	out := &refResult{stats: k.st, wfs: make(map[string]*wave.Waveform, len(k.wfs))}
	for n, wf := range k.wfs {
		out.wfs[n.Name] = wf
	}
	return out, nil
}

func (k *refKernel) emit(net *netlist.Net, start, slew float64, rising bool) {
	tr := k.wfs[net].Add(start, slew, rising)
	k.st.Transitions++
	for _, pin := range net.Fanout {
		if h, ok := k.pending[pin]; ok {
			if pt, live := k.q.TimeOf(h); !live {
				delete(k.pending, pin)
			} else if pt >= start {
				k.q.Remove(h)
				k.st.EventsFiltered++
				delete(k.pending, pin)
			}
		}
		ct, ok := tr.Crossing(pin.VT)
		if !ok {
			continue
		}
		if h, ok := k.pending[pin]; ok {
			if pt, live := k.q.TimeOf(h); live && ct <= pt {
				k.q.Remove(h)
				k.st.EventsFiltered++
				delete(k.pending, pin)
				continue
			}
		}
		k.pending[pin] = k.q.PushKeyed(ct, k.pinID[pin], refEvent{pin: pin, rising: rising, slew: slew})
	}
}

func (k *refKernel) fire(h eventq.Handle, ev refEvent) {
	pin := ev.pin
	g := pin.Gate
	if ph, ok := k.pending[pin]; ok && ph == h {
		delete(k.pending, pin)
	}
	k.inVals[pin] = ev.rising

	k.st.Evaluations++
	args := make([]bool, len(g.Inputs))
	for i, p := range g.Inputs {
		args[i] = k.inVals[p]
	}
	newTarget := g.Eval(args)
	if newTarget == k.outTarget[g] {
		return
	}

	cl := g.Output.Load()
	var ep cellib.EdgeParams
	if newTarget {
		ep = g.Cell.Pins[pin.Index].Rise
	} else {
		ep = g.Cell.Pins[pin.Index].Fall
	}

	var res delay.Result
	switch k.mdl {
	case sim.DDM:
		T := k.now - k.lastOutStart[g]
		res = delay.Degraded(ep, k.vdd, cl, ev.slew, T)
	default:
		res = delay.Conventional(ep, cl, ev.slew)
	}
	if res.Filtered {
		k.st.FullyDegraded++
	} else if res.Degraded {
		k.st.DegradedTransitions++
	}

	tp := math.Max(res.Tp, refMinPulse)
	start := k.now + tp
	if min := k.lastOutStart[g] + refMinPulse; start < min {
		start = min
	}

	k.outTarget[g] = newTarget
	k.lastOutStart[g] = start
	k.emit(g.Output, start, res.Slew, newTarget)
}
