// Package sim implements the HALOTIS logic-timing simulation engine of the
// DATE 2001 paper: an event-driven kernel that distinguishes *transitions*
// (linear voltage ramps on signals) from *events* (the crossing of one gate
// input's threshold voltage by a transition), evaluates gate delays with
// either the conventional delay model (CDM) or the inertial and degradation
// delay model (IDDM/DDM), and performs the Fig. 4 scheduling algorithm with
// event deletion for inertial pulse filtering.
//
// Two front doors exist over the same kernel: the one-shot Simulator
// (New + Run, one run per value) and the reusable Engine (NewEngine, any
// number of Run calls with zero steady-state allocations; see engine.go and
// the parallel batch runner in batch.go).
package sim

import (
	"context"
	"fmt"
	"time"

	"halotis/internal/circ"
	"halotis/internal/netlist"
	"halotis/internal/wave"
)

// Model selects the delay model of the engine.
type Model int

const (
	// DDM is the full inertial and degradation delay model (the paper's
	// HALOTIS-DDM configuration).
	DDM Model = iota
	// CDM is the same engine with degradation disabled: conventional
	// delays, per-input thresholds still active (HALOTIS-CDM).
	CDM
)

// String names the model like the paper does.
func (m Model) String() string {
	switch m {
	case DDM:
		return "HALOTIS-DDM"
	case CDM:
		return "HALOTIS-CDM"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Options configures a simulation run.
type Options struct {
	// Model selects DDM (default) or CDM.
	Model Model
	// MinPulse is the minimum separation between consecutive output
	// transitions of one gate, used to clamp fully degraded pulses to a
	// causally consistent zero-width sliver. Default 1e-6 ns.
	MinPulse float64
	// MaxEvents aborts the run when exceeded, as a guard against
	// oscillating circuits. Default 50e6.
	MaxEvents uint64
	// DefaultSlew is the input slew assumed for stimulus edges that do
	// not specify one. Default 0.5 ns.
	DefaultSlew float64
	// Workers bounds the parallelism of RunBatch: <= 0 means one worker
	// per available CPU. Single runs ignore it.
	Workers int
	// Partitions selects the partitioned parallel kernel for single runs:
	// the circuit is split into that many level-ordered partitions (see
	// circ.Partition), each driven by its own worker goroutine and event
	// queue, with boundary transitions exchanged through mailboxes under a
	// conservative horizon protocol. Results are bit-identical to the
	// sequential kernel for any partition count. 0 (the default) picks
	// automatically by circuit size and GOMAXPROCS — small circuits run
	// sequentially; 1 forces the sequential kernel; values are clamped to
	// [1, MaxPartitions].
	Partitions int
	// Ctx, when non-nil, cancels runs: Engine.Run and RunBatch abort at
	// event-pop granularity once the context is done, returning an error
	// wrapping ctx.Err(). The explicit-context entry points
	// (Engine.RunContext, RunBatchContext) override it.
	Ctx context.Context
	// Profile enables per-run kernel profiling: Result.Profile carries
	// per-worker counters (events popped, horizon-stall waits, mailbox
	// sends and depth high-water). Off by default; the disabled path
	// preserves the engine's zero-allocation steady state. Togglable per
	// run on a live engine via Engine.SetProfiling.
	Profile bool
}

// Defaults applied by setDefaults. DefaultMinPulse and DefaultMaxEvents
// are exported so layers above (the service's engine-pool keys) can
// normalize explicit spellings of the defaults onto one value instead of
// duplicating the literals. Note the engine's DefaultSlew (0.5 ns, for
// stimulus edges reaching the kernel with no slew) is distinct from the
// text/wire stimulus formats' own omitted-slew default of 0.3 ns, which
// netfmt and the service apply before the stimulus reaches the engine.
const (
	// DefaultMinPulse is the default minimum output pulse separation, ns.
	DefaultMinPulse = 1e-6
	// DefaultMaxEvents is the default oscillation guard.
	DefaultMaxEvents = 50_000_000
	// DefaultInputSlew is the engine's default stimulus edge slew, ns.
	DefaultInputSlew = 0.5
)

func (o *Options) setDefaults() {
	if o.MinPulse <= 0 {
		o.MinPulse = DefaultMinPulse
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = DefaultMaxEvents
	}
	if o.DefaultSlew <= 0 {
		o.DefaultSlew = DefaultInputSlew
	}
}

// Stats aggregates kernel counters for one run. EventsQueued/Processed/
// Filtered correspond to the quantities of Table 1 in the paper.
type Stats struct {
	// EventsQueued counts events inserted into the event queue.
	EventsQueued uint64
	// EventsProcessed counts events popped and evaluated.
	EventsProcessed uint64
	// EventsFiltered counts pending events deleted by the inertial rule
	// (the paper's "filtered events").
	EventsFiltered uint64
	// Evaluations counts gate function evaluations.
	Evaluations uint64
	// Transitions counts output transitions emitted onto nets.
	Transitions uint64
	// DegradedTransitions counts transitions whose delay was visibly
	// shortened by degradation.
	DegradedTransitions uint64
	// FullyDegraded counts evaluations where T <= T0 collapsed the output
	// pulse entirely.
	FullyDegraded uint64
}

// Simulator runs one simulation of one circuit. Create with New, run once
// with Run. It is a thin one-shot wrapper over the reusable Engine; batch
// and repeated-run workloads should use NewEngine directly.
type Simulator struct {
	eng *Engine
	ran bool
}

// New prepares a simulator for the circuit.
func New(ckt *netlist.Circuit, opt Options) *Simulator {
	return &Simulator{eng: NewEngine(ckt, opt)}
}

// Run simulates the stimulus until no event at or before tEnd remains. It
// may be called once per Simulator.
func (s *Simulator) Run(st Stimulus, tEnd float64) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: Simulator.Run called twice; create a new Simulator per run")
	}
	s.ran = true
	return s.eng.Run(st, tEnd)
}

// Result carries the outcome of a run.
//
// A Result returned by Engine.Run aliases the engine's reusable waveform
// storage: it is valid until the engine's next Run or Reset. Detach returns
// an independent deep copy. Results from the one-shot Simulator (and the
// package-level Simulate helpers built on it) never get invalidated, since
// their engine is used exactly once.
type Result struct {
	// Model that produced the result.
	Model Model
	// Stats are the kernel counters.
	Stats Stats
	// Elapsed is the wall-clock kernel time (the paper's Table 2 metric).
	Elapsed time.Duration
	// EndTime is the simulated horizon in ns.
	EndTime float64
	// Profile holds per-worker kernel counters when profiling was enabled
	// for the run (Options.Profile / Engine.SetProfiling); nil otherwise.
	Profile *Profile

	ir  *circ.Compiled
	wfs []*wave.Waveform
}

// Detach returns a deep copy of the result whose waveforms no longer alias
// engine storage, safe to hold across further runs of the producing engine.
func (r *Result) Detach() *Result {
	c := *r
	c.wfs = make([]*wave.Waveform, len(r.wfs))
	for i, wf := range r.wfs {
		c.wfs[i] = wf.Clone()
	}
	return &c
}

// Waveform returns the simulated waveform of the named net, or nil. The
// lookup goes through the compiled IR's name index, not the netlist graph.
func (r *Result) Waveform(net string) *wave.Waveform {
	id := r.ir.NetID(net)
	if id < 0 {
		return nil
	}
	return r.wfs[id]
}

// WaveformAt returns the waveform of the net with the given dense ID (see
// circ.Compiled.NetID); the allocation-free variant of Waveform for callers
// that already hold IR net IDs.
func (r *Result) WaveformAt(id int32) *wave.Waveform { return r.wfs[id] }

// Circuit returns the simulated circuit.
func (r *Result) Circuit() *netlist.Circuit { return r.ir.Circuit }

// IR returns the compiled representation the run executed against.
func (r *Result) IR() *circ.Compiled { return r.ir }

// OutputLogic samples every primary output at time t with threshold vt and
// returns name -> level.
func (r *Result) OutputLogic(t, vt float64) map[string]bool {
	out := make(map[string]bool, len(r.ir.Outputs))
	for _, o := range r.ir.Outputs {
		out[r.ir.NetName[o]] = r.wfs[o].LogicAt(t, vt)
	}
	return out
}

// NetActivity reports per-net transition counts and normalized switching
// energy; used by the Table 1 harness.
type NetActivity struct {
	Net         string
	Transitions int
	FullSwing   int
	EnergyNorm  float64
}

// Activity returns activity for every net in ID order.
func (r *Result) Activity() []NetActivity {
	out := make([]NetActivity, len(r.wfs))
	for i := range r.wfs {
		wf := r.wfs[i]
		out[i] = NetActivity{
			Net:         r.ir.NetName[i],
			Transitions: wf.Len(),
			FullSwing:   wf.FullSwingCount(),
			EnergyNorm:  wf.SwitchingEnergyNorm(),
		}
	}
	return out
}

// TotalActivity sums transition counts and switching energy across nets,
// reading the waveforms directly rather than materializing Activity.
func (r *Result) TotalActivity() (transitions int, energy float64) {
	for _, wf := range r.wfs {
		transitions += wf.Len()
		energy += wf.SwitchingEnergyNorm()
	}
	return transitions, energy
}
