// Package sim implements the HALOTIS logic-timing simulation engine of the
// DATE 2001 paper: an event-driven kernel that distinguishes *transitions*
// (linear voltage ramps on signals) from *events* (the crossing of one gate
// input's threshold voltage by a transition), evaluates gate delays with
// either the conventional delay model (CDM) or the inertial and degradation
// delay model (IDDM/DDM), and performs the Fig. 4 scheduling algorithm with
// event deletion for inertial pulse filtering.
package sim

import (
	"fmt"
	"math"
	"time"

	"halotis/internal/cellib"
	"halotis/internal/delay"
	"halotis/internal/eventq"
	"halotis/internal/netlist"
	"halotis/internal/wave"
)

// Model selects the delay model of the engine.
type Model int

const (
	// DDM is the full inertial and degradation delay model (the paper's
	// HALOTIS-DDM configuration).
	DDM Model = iota
	// CDM is the same engine with degradation disabled: conventional
	// delays, per-input thresholds still active (HALOTIS-CDM).
	CDM
)

// String names the model like the paper does.
func (m Model) String() string {
	switch m {
	case DDM:
		return "HALOTIS-DDM"
	case CDM:
		return "HALOTIS-CDM"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Options configures a simulation run.
type Options struct {
	// Model selects DDM (default) or CDM.
	Model Model
	// MinPulse is the minimum separation between consecutive output
	// transitions of one gate, used to clamp fully degraded pulses to a
	// causally consistent zero-width sliver. Default 1e-6 ns.
	MinPulse float64
	// MaxEvents aborts the run when exceeded, as a guard against
	// oscillating circuits. Default 50e6.
	MaxEvents uint64
	// DefaultSlew is the input slew assumed for stimulus edges that do
	// not specify one. Default 0.5 ns.
	DefaultSlew float64
}

func (o *Options) setDefaults() {
	if o.MinPulse <= 0 {
		o.MinPulse = 1e-6
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 50_000_000
	}
	if o.DefaultSlew <= 0 {
		o.DefaultSlew = 0.5
	}
}

// Stats aggregates kernel counters for one run. EventsQueued/Processed/
// Filtered correspond to the quantities of Table 1 in the paper.
type Stats struct {
	// EventsQueued counts events inserted into the event queue.
	EventsQueued uint64
	// EventsProcessed counts events popped and evaluated.
	EventsProcessed uint64
	// EventsFiltered counts pending events deleted by the inertial rule
	// (the paper's "filtered events").
	EventsFiltered uint64
	// Evaluations counts gate function evaluations.
	Evaluations uint64
	// Transitions counts output transitions emitted onto nets.
	Transitions uint64
	// DegradedTransitions counts transitions whose delay was visibly
	// shortened by degradation.
	DegradedTransitions uint64
	// FullyDegraded counts evaluations where T <= T0 collapsed the output
	// pulse entirely.
	FullyDegraded uint64
}

// event is the queue payload: a threshold crossing at one gate input pin.
type event struct {
	pin    *netlist.Pin
	rising bool
	// slew of the transition that caused the crossing; it becomes the
	// tau_in of the receiving gate's delay evaluation.
	slew float64
}

// gateState holds the mutable per-gate simulation state.
type gateState struct {
	vals []bool // current logic value at each input pin
	// pending[i] is the scheduled-but-unfired crossing event at pin i,
	// nil if none. At most one crossing can be pending per pin because
	// per-net transitions are emitted in time order.
	pending []*eventq.Item[event]
	// outTarget is the logic value the output is at or heading toward.
	outTarget bool
	// lastOutStart is the start time of the gate's most recent output
	// transition; -Inf before the first one. The DDM internal state T is
	// measured from it.
	lastOutStart float64
}

// Simulator runs one simulation of one circuit. Create with New, run once
// with Run.
type Simulator struct {
	ckt  *netlist.Circuit
	opt  Options
	q    *eventq.Queue[event]
	wfs  []*wave.Waveform // by net ID
	load []float64        // cached net load, by net ID
	gs   []*gateState     // by gate ID
	now  float64
	st   Stats
	ran  bool
}

// New prepares a simulator for the circuit.
func New(ckt *netlist.Circuit, opt Options) *Simulator {
	opt.setDefaults()
	return &Simulator{ckt: ckt, opt: opt}
}

// Result carries the outcome of a run.
type Result struct {
	// Model that produced the result.
	Model Model
	// Stats are the kernel counters.
	Stats Stats
	// Elapsed is the wall-clock kernel time (the paper's Table 2 metric).
	Elapsed time.Duration
	// EndTime is the simulated horizon in ns.
	EndTime float64

	ckt *netlist.Circuit
	wfs []*wave.Waveform
}

// Waveform returns the simulated waveform of the named net, or nil.
func (r *Result) Waveform(net string) *wave.Waveform {
	n := r.ckt.NetByName(net)
	if n == nil {
		return nil
	}
	return r.wfs[n.ID]
}

// Circuit returns the simulated circuit.
func (r *Result) Circuit() *netlist.Circuit { return r.ckt }

// OutputLogic samples every primary output at time t with threshold vt and
// returns name -> level.
func (r *Result) OutputLogic(t, vt float64) map[string]bool {
	out := make(map[string]bool, len(r.ckt.Outputs))
	for _, o := range r.ckt.Outputs {
		out[o.Name] = r.wfs[o.ID].LogicAt(t, vt)
	}
	return out
}

// NetActivity reports per-net transition counts and normalized switching
// energy; used by the Table 1 harness.
type NetActivity struct {
	Net         string
	Transitions int
	FullSwing   int
	EnergyNorm  float64
}

// Activity returns activity for every net in ID order.
func (r *Result) Activity() []NetActivity {
	out := make([]NetActivity, len(r.ckt.Nets))
	for i, n := range r.ckt.Nets {
		wf := r.wfs[i]
		out[i] = NetActivity{
			Net:         n.Name,
			Transitions: wf.Len(),
			FullSwing:   wf.FullSwingCount(),
			EnergyNorm:  wf.SwitchingEnergyNorm(),
		}
	}
	return out
}

// TotalActivity sums transition counts and switching energy across nets.
func (r *Result) TotalActivity() (transitions int, energy float64) {
	for _, a := range r.Activity() {
		transitions += a.Transitions
		energy += a.EnergyNorm
	}
	return transitions, energy
}

// Run simulates the stimulus until no event at or before tEnd remains. It
// may be called once per Simulator.
func (s *Simulator) Run(st Stimulus, tEnd float64) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: Simulator.Run called twice; create a new Simulator per run")
	}
	s.ran = true
	inputNames := make(map[string]bool, len(s.ckt.Inputs))
	for _, in := range s.ckt.Inputs {
		inputNames[in.Name] = true
	}
	if err := st.Validate(inputNames); err != nil {
		return nil, err
	}

	start := time.Now()
	s.init(st)
	s.applyStimulus(st)

	for {
		it := s.q.Peek()
		if it == nil || it.Time > tEnd {
			break
		}
		s.q.Pop()
		if it.Time < s.now {
			return nil, fmt.Errorf("sim: causality violation: event at %g before now %g", it.Time, s.now)
		}
		s.now = it.Time
		s.st.EventsProcessed++
		if s.st.EventsProcessed > s.opt.MaxEvents {
			return nil, fmt.Errorf("sim: event limit %d exceeded at t=%g ns (oscillation?)", s.opt.MaxEvents, s.now)
		}
		s.fire(it)
	}

	elapsed := time.Since(start)
	queued, _, removed := s.q.Stats()
	s.st.EventsQueued = queued
	if s.st.EventsFiltered != removed {
		// The two counters track the same deletions through different
		// paths; disagreement means an engine bug.
		return nil, fmt.Errorf("sim: filtered-event accounting mismatch: %d vs %d", s.st.EventsFiltered, removed)
	}
	return &Result{
		Model:   s.opt.Model,
		Stats:   s.st,
		Elapsed: elapsed,
		EndTime: tEnd,
		ckt:     s.ckt,
		wfs:     s.wfs,
	}, nil
}

// init seeds waveforms and gate states from the settled boolean solution of
// the initial input levels.
func (s *Simulator) init(st Stimulus) {
	vdd := s.ckt.Lib.VDD
	vals := make([]bool, len(s.ckt.Nets))
	for _, in := range s.ckt.Inputs {
		vals[in.ID] = st[in.Name].Init
	}
	for _, g := range s.ckt.GatesByLevel() {
		args := make([]bool, len(g.Inputs))
		for i, p := range g.Inputs {
			args[i] = vals[p.Net.ID]
		}
		vals[g.Output.ID] = g.Eval(args)
	}

	s.wfs = make([]*wave.Waveform, len(s.ckt.Nets))
	s.load = make([]float64, len(s.ckt.Nets))
	for _, n := range s.ckt.Nets {
		v0 := 0.0
		if vals[n.ID] {
			v0 = vdd
		}
		s.wfs[n.ID] = wave.NewWaveform(vdd, v0)
		s.load[n.ID] = n.Load()
	}

	s.gs = make([]*gateState, len(s.ckt.Gates))
	for _, g := range s.ckt.Gates {
		gst := &gateState{
			vals:         make([]bool, len(g.Inputs)),
			pending:      make([]*eventq.Item[event], len(g.Inputs)),
			outTarget:    vals[g.Output.ID],
			lastOutStart: math.Inf(-1),
		}
		for i, p := range g.Inputs {
			gst.vals[i] = vals[p.Net.ID]
		}
		s.gs[g.ID] = gst
	}
	s.q = eventq.New[event]()
	s.now = 0
}

// applyStimulus emits the externally driven transitions onto the primary
// input nets, scheduling receiver events through the same reconciliation
// path gate outputs use.
func (s *Simulator) applyStimulus(st Stimulus) {
	for _, name := range st.sortedNames() {
		w := st[name]
		net := s.ckt.NetByName(name)
		for _, e := range w.Edges {
			slew := e.Slew
			if slew <= 0 {
				slew = s.opt.DefaultSlew
			}
			s.emit(net, e.Time, slew, e.Rising)
		}
	}
}

// emit appends a transition to a net's waveform and reconciles every fanout
// pin's pending event, implementing the insertion/deletion rule of the
// paper's Fig. 4 algorithm.
func (s *Simulator) emit(net *netlist.Net, start, slew float64, rising bool) {
	wf := s.wfs[net.ID]
	tr := wf.Add(start, slew, rising)
	s.st.Transitions++
	for _, pin := range net.Fanout {
		gst := s.gs[pin.Gate.ID]
		// Rule 1: a pending crossing pre-empted by this truncation
		// (its crossing time is at or after the new ramp's start)
		// never happens; delete it from the queue.
		if p := gst.pending[pin.Index]; p != nil {
			if !p.Pending() {
				gst.pending[pin.Index] = nil
			} else if p.Time >= start {
				s.q.Remove(p)
				s.st.EventsFiltered++
				gst.pending[pin.Index] = nil
			}
		}
		// Rule 2: schedule the new ramp's crossing of this pin's VT,
		// if the ramp crosses at all. A ramp that starts on the far
		// side of VT (a runt that never reached it) schedules
		// nothing — the pulse is filtered at this input.
		ct, ok := tr.Crossing(pin.VT)
		if !ok {
			continue
		}
		if p := gst.pending[pin.Index]; p != nil && p.Pending() && ct <= p.Time {
			// Paper rule Ej <= Ej-1: delete Ej-1, do not insert Ej.
			// Geometrically unreachable after rule 1 (kept for
			// engine robustness).
			s.q.Remove(p)
			s.st.EventsFiltered++
			gst.pending[pin.Index] = nil
			continue
		}
		item := s.q.Push(ct, event{pin: pin, rising: rising, slew: slew})
		gst.pending[pin.Index] = item
	}
}

// fire consumes one event: updates the pin's logic value, re-evaluates the
// gate, and emits a delayed output transition when the output target flips.
func (s *Simulator) fire(it *eventq.Item[event]) {
	ev := it.Payload
	pin := ev.pin
	g := pin.Gate
	gst := s.gs[g.ID]
	if gst.pending[pin.Index] == it {
		gst.pending[pin.Index] = nil
	}
	gst.vals[pin.Index] = ev.rising

	s.st.Evaluations++
	newTarget := g.Cell.Kind.Eval(gst.vals)
	if newTarget == gst.outTarget {
		return
	}

	cl := s.load[g.Output.ID]
	pp := g.Cell.Pins[pin.Index]
	var ep cellib.EdgeParams
	if newTarget {
		ep = pp.Rise
	} else {
		ep = pp.Fall
	}

	var res delay.Result
	switch s.opt.Model {
	case DDM:
		T := s.now - gst.lastOutStart // +Inf before the first transition
		res = delay.Degraded(ep, s.ckt.Lib.VDD, cl, ev.slew, T)
	default:
		res = delay.Conventional(ep, cl, ev.slew)
	}
	if res.Filtered {
		s.st.FullyDegraded++
	} else if res.Degraded {
		s.st.DegradedTransitions++
	}

	// Clamp to a causal, per-net monotonic start time. Full degradation
	// (tp <= 0) collapses the pulse to a MinPulse sliver right after the
	// previous output transition; receivers then cancel its crossings.
	tp := math.Max(res.Tp, s.opt.MinPulse)
	start := s.now + tp
	if min := gst.lastOutStart + s.opt.MinPulse; start < min {
		start = min
	}

	gst.outTarget = newTarget
	gst.lastOutStart = start
	s.emit(g.Output, start, res.Slew, newTarget)
}
