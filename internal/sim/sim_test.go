package sim

import (
	"math"
	"math/rand"
	"testing"

	"halotis/internal/cellib"
	"halotis/internal/delay"
	"halotis/internal/netlist"
)

var lib = cellib.Default06()

const vdd = cellib.Default06VDD

// invChain builds a chain of n inverters: in -> w0 -> w1 ... -> out.
func invChain(t testing.TB, n int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("chain", lib)
	b.Input("in")
	prev := "in"
	for i := 0; i < n; i++ {
		out := netName(i, n)
		b.AddGate(gateName(i), cellib.INV, out, prev)
		prev = out
	}
	b.Output(prev)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func netName(i, n int) string {
	if i == n-1 {
		return "out"
	}
	return "w" + string(rune('a'+i))
}

func gateName(i int) string { return "g" + string(rune('a'+i)) }

// pulse returns a stimulus driving one input with a single positive pulse.
func pulse(name string, t0, width, slew float64) Stimulus {
	return Stimulus{name: InputWave{Init: false, Edges: []InputEdge{
		{Time: t0, Rising: true, Slew: slew},
		{Time: t0 + width, Rising: false, Slew: slew},
	}}}
}

func run(t testing.TB, ckt *netlist.Circuit, st Stimulus, tEnd float64, m Model) *Result {
	t.Helper()
	res, err := New(ckt, Options{Model: m}).Run(st, tEnd)
	if err != nil {
		t.Fatalf("run (%v): %v", m, err)
	}
	return res
}

func TestInverterStepResponse(t *testing.T) {
	ckt := invChain(t, 1)
	st := Stimulus{"in": InputWave{Init: false, Edges: []InputEdge{{Time: 2, Rising: true, Slew: 0.4}}}}
	res := run(t, ckt, st, 50, DDM)

	out := res.Waveform("out")
	if out.VInit != vdd {
		t.Fatalf("out initial = %g, want VDD (inverter of 0)", out.VInit)
	}
	if out.Len() != 1 {
		t.Fatalf("out transitions = %d, want 1", out.Len())
	}
	tr := out.Transitions()[0]
	if tr.Rising {
		t.Error("output edge should fall")
	}
	// Event at VT=2.5 crossing of the input ramp: 2 + 0.4*(2.5/5) = 2.2.
	// Then the conventional fall delay (first transition: no degradation).
	pp := lib.Cell(cellib.INV).Pins[0]
	cl := ckt.NetByName("out").Load()
	want := 2.2 + delay.Conventional(pp.Fall, cl, 0.4).Tp
	if math.Abs(tr.Start-want) > 1e-9 {
		t.Errorf("fall start = %g, want %g", tr.Start, want)
	}
	wantSlew := pp.Fall.Slew(cl, 0.4)
	if math.Abs(tr.Slew-wantSlew) > 1e-9 {
		t.Errorf("fall slew = %g, want %g", tr.Slew, wantSlew)
	}
	if got := res.OutputLogic(50, vdd/2)["out"]; got {
		t.Error("settled output should be 0")
	}
}

func TestChainSettlesToBooleanSolution(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		ckt := invChain(t, n)
		st := Stimulus{"in": InputWave{Init: false, Edges: []InputEdge{{Time: 1, Rising: true, Slew: 0.3}}}}
		for _, m := range []Model{DDM, CDM} {
			res := run(t, ckt, st, 100, m)
			want := n%2 == 1 // odd chain inverts the final 1
			if got := res.OutputLogic(100, vdd/2)["out"]; got != !want == false && got == want {
				// settled value of chain(1) = !1 if odd
			}
			wantOut := (n % 2) == 0 // even number of inversions keeps 1
			if got := res.OutputLogic(100, vdd/2)["out"]; got != wantOut {
				t.Errorf("n=%d %v: out = %v, want %v", n, m, got, wantOut)
			}
		}
	}
}

func TestWaveformInvariantsAfterRun(t *testing.T) {
	ckt := invChain(t, 6)
	st := Stimulus{"in": InputWave{Init: false, Edges: []InputEdge{
		{Time: 1, Rising: true, Slew: 0.3},
		{Time: 1.7, Rising: false, Slew: 0.3},
		{Time: 2.1, Rising: true, Slew: 0.3},
		{Time: 6, Rising: false, Slew: 0.3},
	}}}
	for _, m := range []Model{DDM, CDM} {
		res := run(t, ckt, st, 100, m)
		for _, n := range ckt.Nets {
			if err := res.Waveform(n.Name).Validate(); err != nil {
				t.Errorf("%v: net %s: %v", m, n.Name, err)
			}
		}
	}
}

// startWidth returns the time between the first two transition starts on a
// waveform — the pulse width as the DDM theory measures it.
func startWidth(t *testing.T, r *Result, net string) float64 {
	t.Helper()
	trs := r.Waveform(net).Transitions()
	if len(trs) != 2 {
		t.Fatalf("net %s transitions = %d, want 2 (%v)", net, len(trs), trs)
	}
	return trs[1].Start - trs[0].Start
}

func TestDDMShrinksPulse(t *testing.T) {
	ckt := invChain(t, 1)
	width := 0.32
	ddm := run(t, ckt, pulse("in", 2, width, 0.12), 50, DDM)
	cdm := run(t, ckt, pulse("in", 2, width, 0.12), 50, CDM)
	wD := startWidth(t, ddm, "out")
	wC := startWidth(t, cdm, "out")
	if wD >= width {
		t.Errorf("DDM output pulse width %g not narrower than input %g", wD, width)
	}
	if wD >= wC {
		t.Errorf("DDM pulse %g should be narrower than CDM pulse %g", wD, wC)
	}
	if ddm.Stats.DegradedTransitions == 0 {
		t.Error("expected a degraded transition in stats")
	}
	// Both models still deliver a half-swing pulse for this width.
	if ps := ddm.Waveform("out").Pulses(vdd / 2); len(ps) != 1 {
		t.Errorf("DDM half-swing pulses = %d, want 1", len(ps))
	}
}

func TestDDMFiltersVeryNarrowPulse(t *testing.T) {
	// A pulse narrower than the gate's tp+T0 collapses entirely under
	// DDM: the first-stage output is a zero-width sliver, its pending
	// receiver event is deleted (a paper "filtered event"), and the
	// second stage never switches.
	ckt := invChain(t, 2)
	res := run(t, ckt, pulse("in", 2, 0.10, 0.12), 50, DDM)
	if got := res.Waveform("out").Len(); got != 0 {
		t.Errorf("second-stage transitions = %d, want 0 (filtered)", got)
	}
	if cs := res.Waveform("wa").Crossings(vdd / 2); len(cs) != 0 {
		t.Errorf("first-stage sliver crossed half swing: %v", cs)
	}
	if res.Stats.FullyDegraded == 0 {
		t.Error("expected FullyDegraded in stats")
	}
	if res.Stats.EventsFiltered == 0 {
		t.Error("expected a deleted (filtered) event in stats")
	}
	// Under CDM the same pulse produces a full-swing first-stage pulse
	// and reaches the output net (attenuated only by ramp truncation).
	res2 := run(t, ckt, pulse("in", 2, 0.10, 0.12), 50, CDM)
	if ps := res2.Waveform("wa").Pulses(vdd / 2); len(ps) != 1 {
		t.Errorf("CDM first-stage pulses = %d, want 1", len(ps))
	}
	if res2.Waveform("out").Len() == 0 {
		t.Error("CDM should emit output transitions for the narrow pulse")
	}
}

func TestDDMPulseTrainDies(t *testing.T) {
	// Feed a marginal pulse through a long chain: DDM must kill it at
	// some stage; CDM must deliver it to the end.
	n := 8
	ckt := invChain(t, n)
	st := pulse("in", 2, 0.22, 0.12)
	ddm := run(t, ckt, st, 100, DDM)
	cdm := run(t, ckt, st, 100, CDM)
	if ps := cdm.Waveform("out").Pulses(vdd / 2); len(ps) != 1 {
		t.Fatalf("CDM end-of-chain pulses = %d, want 1", len(ps))
	}
	if ps := ddm.Waveform("out").Pulses(vdd / 2); len(ps) != 0 {
		t.Errorf("DDM end-of-chain pulses = %d, want 0 (progressively degraded)", len(ps))
	}
	if ddm.Stats.Transitions >= cdm.Stats.Transitions {
		t.Errorf("DDM transitions %d should be fewer than CDM %d",
			ddm.Stats.Transitions, cdm.Stats.Transitions)
	}
}

func TestPerInputThresholdSelectiveFiltering(t *testing.T) {
	// One net drives two inverters with different thresholds. A partial
	// pulse that peaks between the two VTs propagates into the low-VT
	// gate only — the key behaviour conventional inertial models cannot
	// express (paper Fig. 1).
	b := netlist.NewBuilder("fig1", lib)
	b.Input("in")
	b.AddGate("g0", cellib.INV, "n", "in")
	b.AddGate("g1", cellib.INV, "out1", "n")
	b.AddGate("g2", cellib.INV, "out2", "n")
	b.SetPinVT("g1", 0, 1.0) // low threshold: sees partial pulses
	b.SetPinVT("g2", 0, 4.0) // high threshold: filters them
	b.Output("out1")
	b.Output("out2")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// in: 0 -> brief 1 pulse. g0 output n: 1 -> partial fall pulse. With
	// width tuned so the n runt dips below 1.0 V but not below... note n
	// falls from 5: dipping *below* 4.0 V triggers g2 (falling crossing of
	// VT=4), dipping below 1.0 triggers g1. So the runt that only reaches
	// 2 V fires g2 (crossed 4.0 downward) but not g1 (never reached 1.0):
	// high-VT receiver sees it, low-VT receiver filters it.
	res := run(t, ckt, pulse("in", 2, 0.16, 0.12), 60, DDM)
	n := res.Waveform("n")
	if n.Len() < 2 {
		t.Fatalf("expected a runt pulse on n, got %d transitions", n.Len())
	}
	min := vdd
	for _, tr := range n.Transitions() {
		if v := tr.VEnd(); v < min {
			min = v
		}
	}
	if min >= 4.0 || min <= 1.0 {
		t.Skipf("runt depth %g outside the selective band; tune pulse width", min)
	}
	if got := res.Waveform("out2").Len(); got == 0 {
		t.Error("high-VT receiver g2 should respond to the runt")
	}
	if got := res.Waveform("out1").Len(); got != 0 {
		t.Errorf("low-VT receiver g1 should filter the runt, got %d transitions", got)
	}
}

func TestNANDInputCollisionSingleTransition(t *testing.T) {
	b := netlist.NewBuilder("nand", lib)
	b.Input("a")
	b.Input("b")
	b.AddGate("g", cellib.NAND2, "out", "a", "b")
	b.Output("out")
	ckt := b.MustBuild()
	// Both inputs rise simultaneously: output falls exactly once.
	st := Stimulus{
		"a": InputWave{Edges: []InputEdge{{Time: 1, Rising: true, Slew: 0.3}}},
		"b": InputWave{Edges: []InputEdge{{Time: 1, Rising: true, Slew: 0.3}}},
	}
	res := run(t, ckt, st, 50, DDM)
	if got := res.Waveform("out").Len(); got != 1 {
		t.Errorf("out transitions = %d, want 1", got)
	}
	if res.OutputLogic(50, vdd/2)["out"] {
		t.Error("NAND(1,1) must settle low")
	}
}

func TestNANDStaticHazardGlitch(t *testing.T) {
	// a=1->0 and b=0->1 staggered so the NAND momentarily sees (1,1):
	// classic static-1 hazard. The engine must emit the glitch (CDM) and
	// degrade it (DDM).
	b := netlist.NewBuilder("hazard", lib)
	b.Input("a")
	b.Input("b")
	b.AddGate("g", cellib.NAND2, "out", "a", "b")
	b.Output("out")
	ckt := b.MustBuild()
	st := Stimulus{
		"a": InputWave{Init: true, Edges: []InputEdge{{Time: 2.4, Rising: false, Slew: 0.3}}},
		"b": InputWave{Init: false, Edges: []InputEdge{{Time: 2.0, Rising: true, Slew: 0.3}}},
	}
	cdm := run(t, ckt, st, 50, CDM)
	if got := cdm.Waveform("out").Len(); got != 2 {
		t.Fatalf("CDM out transitions = %d, want 2 (glitch)", got)
	}
	ddm := run(t, ckt, st, 50, DDM)
	// DDM still emits the transitions but the pulse is narrower.
	wCDM := cdm.Waveform("out").Transitions()
	wDDM := ddm.Waveform("out").Transitions()
	if len(wDDM) == 2 && len(wCDM) == 2 {
		cw := wCDM[1].Start - wCDM[0].Start
		dw := wDDM[1].Start - wDDM[0].Start
		if dw > cw+1e-9 {
			t.Errorf("DDM glitch width %g should not exceed CDM %g", dw, cw)
		}
	}
	for _, r := range []*Result{cdm, ddm} {
		if got := r.OutputLogic(50, vdd/2)["out"]; !got {
			t.Error("NAND(0,1) must settle high")
		}
	}
}

func TestStimulusValidation(t *testing.T) {
	ckt := invChain(t, 1)
	cases := []Stimulus{
		{"nope": InputWave{}}, // unknown input
		{"in": InputWave{Edges: []InputEdge{{Time: -1, Rising: true, Slew: 0.3}}}},
		{"in": InputWave{Edges: []InputEdge{{Time: 1, Rising: true, Slew: 0}}}},
		{"in": InputWave{Edges: []InputEdge{
			{Time: 2, Rising: true, Slew: 0.3}, {Time: 1, Rising: false, Slew: 0.3}}}},
	}
	for i, st := range cases {
		if _, err := New(ckt, Options{}).Run(st, 10); err == nil {
			t.Errorf("case %d: bad stimulus accepted", i)
		}
	}
}

func TestRunTwiceFails(t *testing.T) {
	ckt := invChain(t, 1)
	s := New(ckt, Options{})
	if _, err := s.Run(Stimulus{}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Stimulus{}, 10); err == nil {
		t.Error("second Run should fail")
	}
}

func TestEmptyStimulusQuiescent(t *testing.T) {
	ckt := invChain(t, 3)
	res := run(t, ckt, Stimulus{}, 50, DDM)
	if res.Stats.Transitions != 0 || res.Stats.EventsProcessed != 0 {
		t.Errorf("quiescent circuit produced activity: %+v", res.Stats)
	}
	if got := res.OutputLogic(50, vdd/2)["out"]; !got {
		t.Error("3-inverter chain of 0 should output 1")
	}
}

func TestDeterminism(t *testing.T) {
	ckt := invChain(t, 5)
	st := Stimulus{"in": InputWave{Edges: []InputEdge{
		{Time: 1, Rising: true, Slew: 0.3},
		{Time: 1.6, Rising: false, Slew: 0.4},
		{Time: 2.9, Rising: true, Slew: 0.2},
	}}}
	a := run(t, ckt, st, 100, DDM)
	b := run(t, ckt, st, 100, DDM)
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	for _, n := range ckt.Nets {
		ta := a.Waveform(n.Name).Transitions()
		tb := b.Waveform(n.Name).Transitions()
		if len(ta) != len(tb) {
			t.Fatalf("net %s transition counts differ", n.Name)
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("net %s transition %d differs: %v vs %v", n.Name, i, ta[i], tb[i])
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	ckt := invChain(t, 4)
	res := run(t, ckt, pulse("in", 1, 0.5, 0.3), 100, DDM)
	s := res.Stats
	if s.EventsQueued < s.EventsProcessed+s.EventsFiltered {
		t.Errorf("queued %d < processed %d + filtered %d",
			s.EventsQueued, s.EventsProcessed, s.EventsFiltered)
	}
	if s.Evaluations != s.EventsProcessed {
		t.Errorf("evaluations %d != processed %d", s.Evaluations, s.EventsProcessed)
	}
}

func TestEventHorizonRespected(t *testing.T) {
	ckt := invChain(t, 1)
	st := Stimulus{"in": InputWave{Edges: []InputEdge{
		{Time: 1, Rising: true, Slew: 0.3},
		{Time: 90, Rising: false, Slew: 0.3},
	}}}
	res := run(t, ckt, st, 10, DDM) // horizon before the second edge fires
	if got := res.Waveform("out").Len(); got != 1 {
		t.Errorf("out transitions = %d, want 1 (second edge beyond horizon)", got)
	}
}

// randTree builds a random NAND/NOR/INV tree circuit with the given number
// of primary inputs, for settled-logic property testing.
func randTree(t testing.TB, rng *rand.Rand, inputs int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("rand", lib)
	var avail []string
	for i := 0; i < inputs; i++ {
		name := "i" + string(rune('0'+i))
		b.Input(name)
		avail = append(avail, name)
	}
	id := 0
	newNet := func() string {
		id++
		return "n" + itoa(id)
	}
	for len(avail) > 1 {
		kindChoice := []cellib.Kind{cellib.NAND2, cellib.NOR2, cellib.INV, cellib.NAND2}
		k := kindChoice[rng.Intn(len(kindChoice))]
		out := newNet()
		if k.NumInputs() == 1 || len(avail) < 2 {
			k = cellib.INV
			j := rng.Intn(len(avail))
			b.AddGate("g"+out, k, out, avail[j])
			avail[j] = out
		} else {
			j := rng.Intn(len(avail))
			a := avail[j]
			avail = append(avail[:j], avail[j+1:]...)
			j2 := rng.Intn(len(avail))
			b.AddGate("g"+out, k, out, a, avail[j2])
			avail[j2] = out
		}
	}
	b.Output(avail[0])
	return b.MustBuild()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

// TestSettledLogicProperty drives random trees with random vector changes
// and checks that both models settle every primary output to the zero-delay
// boolean solution.
func TestSettledLogicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		inputs := 2 + rng.Intn(5)
		ckt := randTree(t, rng, inputs)
		st := Stimulus{}
		final := map[string]bool{}
		for _, in := range ckt.Inputs {
			init := rng.Intn(2) == 0
			target := rng.Intn(2) == 0
			w := InputWave{Init: init}
			if target != init {
				w.Edges = []InputEdge{{Time: 1 + rng.Float64(), Rising: target, Slew: 0.2 + rng.Float64()*0.4}}
			}
			st[in.Name] = w
			final[in.Name] = target
		}
		want, err := ckt.EvalBool(final)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Model{DDM, CDM} {
			res := run(t, ckt, st, 200, m)
			got := res.OutputLogic(200, vdd/2)
			for name, v := range want {
				if got[name] != v {
					t.Errorf("trial %d %v: output %s = %v, want %v", trial, m, name, got[name], v)
				}
			}
			for _, n := range ckt.Nets {
				if err := res.Waveform(n.Name).Validate(); err != nil {
					t.Errorf("trial %d %v: %v", trial, m, err)
				}
			}
		}
	}
}

func TestActivityReporting(t *testing.T) {
	ckt := invChain(t, 2)
	res := run(t, ckt, pulse("in", 1, 3, 0.3), 100, DDM)
	acts := res.Activity()
	if len(acts) != len(ckt.Nets) {
		t.Fatalf("activity entries = %d, want %d", len(acts), len(ckt.Nets))
	}
	totalT, totalE := res.TotalActivity()
	var sumT int
	var sumE float64
	for _, a := range acts {
		sumT += a.Transitions
		sumE += a.EnergyNorm
	}
	if sumT != totalT || math.Abs(sumE-totalE) > 1e-12 {
		t.Error("TotalActivity disagrees with Activity sum")
	}
	if totalT < 6 { // 2 input edges + 2 per stage
		t.Errorf("total transitions = %d, want >= 6", totalT)
	}
}

func TestModelString(t *testing.T) {
	if DDM.String() != "HALOTIS-DDM" || CDM.String() != "HALOTIS-CDM" {
		t.Error("model names wrong")
	}
	if Model(9).String() == "" {
		t.Error("unknown model name empty")
	}
}

func TestWaveformUnknownNet(t *testing.T) {
	ckt := invChain(t, 1)
	res := run(t, ckt, Stimulus{}, 10, DDM)
	if res.Waveform("ghost") != nil {
		t.Error("unknown net should yield nil waveform")
	}
}
