package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"slices"
)

// InputEdge is one externally driven transition on a primary input.
type InputEdge struct {
	// Time the ramp begins, ns.
	Time float64
	// Rising direction of the ramp.
	Rising bool
	// Slew is the full-swing transition time of the driving ramp, ns.
	Slew float64
}

// InputWave is the complete drive for one primary input: an initial level
// and a time-ordered list of edges.
type InputWave struct {
	// Init is the input's logic level before the first edge.
	Init bool
	// Edges in nondecreasing time order.
	Edges []InputEdge
}

// Stimulus maps primary input names to their drives. Inputs missing from
// the map are held at logic 0.
type Stimulus map[string]InputWave

// Validate checks edge ordering and slews; inputNames lists the circuit's
// primary inputs for membership checking.
func (st Stimulus) Validate(inputNames map[string]bool) error {
	// The reduction below is order-independent — every drive is checked and
	// the reported error is pinned to the lexicographically smallest
	// offending input — so map iteration order cannot reach the caller.
	// Sorting the names first would be simpler but allocates, and Validate
	// sits on the engine's zero-allocation steady-state path.
	var badName string
	var badErr error
	//halotis:ordered error choice reduces to the smallest offending input name; the happy path is order-independent
	for name, w := range st {
		if err := validateWave(name, w, inputNames); err != nil {
			if badErr == nil || name < badName {
				badName, badErr = name, err
			}
		}
	}
	return badErr
}

// validateWave checks one input's drive; the edge scan is deterministic
// (edges are a slice), so the first bad edge is always the one reported.
func validateWave(name string, w InputWave, inputNames map[string]bool) error {
	if !inputNames[name] {
		return fmt.Errorf("sim: stimulus drives %q, which is not a primary input", name)
	}
	prev := 0.0
	for i, e := range w.Edges {
		if e.Slew <= 0 {
			return fmt.Errorf("sim: stimulus %q edge %d has non-positive slew %g", name, i, e.Slew)
		}
		if e.Time < 0 {
			return fmt.Errorf("sim: stimulus %q edge %d at negative time %g", name, i, e.Time)
		}
		if i > 0 && e.Time < prev {
			return fmt.Errorf("sim: stimulus %q edges out of order at %d (%g < %g)", name, i, e.Time, prev)
		}
		prev = e.Time
	}
	return nil
}

// sortedNames returns the driven input names in deterministic order.
func (st Stimulus) sortedNames() []string {
	names := make([]string, 0, len(st))
	for n := range st {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// ContentHash returns the stimulus's stable content hash: a hex SHA-256
// over a canonical rendering of every drive — input names in sorted order,
// each with its initial level and exact edge list (time, direction, slew,
// float bits hashed verbatim). It mirrors circ.ContentHash for circuits:
// two Stimulus values describing the same drive hash identically regardless
// of map iteration order, while any change to an edge changes the hash.
// Together with a circuit's content hash and an options fingerprint it
// keys result caches: same circuit + same stimulus + same options means
// the same deterministic result.
//
// Inputs mapped to an all-zero InputWave (the implicit idle drive) still
// contribute their name, so driving an input explicitly at constant 0 and
// omitting it hash differently — the kernel validates driven names, and
// the two stimuli are not interchangeable across circuits.
func (st Stimulus) ContentHash() string {
	h := sha256.New()
	var buf [8]byte
	num := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	flag := func(b bool) {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	h.Write([]byte("halotis/sim stimulus v1\x00"))
	for _, name := range st.sortedNames() {
		w := st[name]
		h.Write([]byte(name))
		h.Write([]byte{0})
		flag(w.Init)
		binary.LittleEndian.PutUint64(buf[:], uint64(len(w.Edges)))
		h.Write(buf[:])
		for _, e := range w.Edges {
			num(e.Time)
			flag(e.Rising)
			num(e.Slew)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LastEdgeTime returns the time of the latest edge across all inputs, or 0.
func (st Stimulus) LastEdgeTime() float64 {
	last := 0.0
	//halotis:ordered max over values is an order-independent reduction
	for _, w := range st {
		if n := len(w.Edges); n > 0 && w.Edges[n-1].Time > last {
			last = w.Edges[n-1].Time
		}
	}
	return last
}
