package sim

import "testing"

func hashStimulus() Stimulus {
	return Stimulus{
		"a": {Init: true, Edges: []InputEdge{{Time: 1, Rising: false, Slew: 0.2}, {Time: 5, Rising: true, Slew: 0.3}}},
		"b": {Edges: []InputEdge{{Time: 2.5, Rising: true, Slew: 0.2}}},
		"c": {},
	}
}

func TestStimulusContentHashStable(t *testing.T) {
	h1 := hashStimulus().ContentHash()
	h2 := hashStimulus().ContentHash()
	if h1 != h2 {
		t.Fatalf("hash not reproducible: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", h1)
	}
}

func TestStimulusContentHashSensitivity(t *testing.T) {
	ref := hashStimulus().ContentHash()
	mutations := map[string]func(Stimulus){
		"edge time":  func(s Stimulus) { w := s["a"]; w.Edges[0].Time = 1.0000001; s["a"] = w },
		"edge dir":   func(s Stimulus) { w := s["b"]; w.Edges[0].Rising = false; s["b"] = w },
		"edge slew":  func(s Stimulus) { w := s["a"]; w.Edges[1].Slew = 0.31; s["a"] = w },
		"init level": func(s Stimulus) { w := s["a"]; w.Init = false; s["a"] = w },
		"extra edge": func(s Stimulus) {
			w := s["b"]
			w.Edges = append(w.Edges, InputEdge{Time: 9, Rising: false, Slew: 0.2})
			s["b"] = w
		},
		"rename input": func(s Stimulus) { s["d"] = s["c"]; delete(s, "c") },
		"drop input":   func(s Stimulus) { delete(s, "c") },
	}
	for name, mutate := range mutations {
		s := hashStimulus()
		mutate(s)
		if got := s.ContentHash(); got == ref {
			t.Errorf("%s: hash did not change", name)
		}
	}
}

// TestStimulusContentHashNoFieldBleed pins the canonical encoding against
// ambiguity: moving a value across field boundaries must change the hash
// (times, slews and names are delimited, not concatenated).
func TestStimulusContentHashNoFieldBleed(t *testing.T) {
	a := Stimulus{"x": {Edges: []InputEdge{{Time: 1, Rising: true, Slew: 2}}}}
	b := Stimulus{"x": {Edges: []InputEdge{{Time: 2, Rising: true, Slew: 1}}}}
	if a.ContentHash() == b.ContentHash() {
		t.Error("swapping time and slew did not change the hash")
	}
	c := Stimulus{"xy": {}, "z": {}}
	d := Stimulus{"x": {}, "yz": {}}
	if c.ContentHash() == d.ContentHash() {
		t.Error("re-splitting input names did not change the hash")
	}
}
