package stats

import (
	"fmt"
	"sort"
	"strings"

	"halotis/internal/sim"
)

// PowerReport estimates dynamic switching power from a simulation result —
// the application the paper motivates the IDDM with ("truly power
// consumption due to glitches"). Dynamic energy per transition is
// CL·VDD·ΔV (charge transferred times supply), so partial-swing runts
// contribute proportionally less than full transitions.
type PowerReport struct {
	// TotalEnergy is the total switching energy in femtojoules
	// (pF · V²).
	TotalEnergy float64
	// GlitchEnergy is the energy of transitions that did not settle to a
	// rail (partial swings), i.e. degraded glitches.
	GlitchEnergy float64
	// Window is the simulated interval used for average power, ns.
	Window float64
	// PerNet ranks nets by energy, descending.
	PerNet []NetPower
}

// NetPower is one net's switching-energy contribution.
type NetPower struct {
	Net         string
	Energy      float64 // fJ
	Transitions int
	FullSwing   int
}

// AveragePowerMW returns the average dynamic power in milliwatts
// (fJ / ns = µW; scaled to mW).
func (p PowerReport) AveragePowerMW() float64 {
	if p.Window <= 0 {
		return 0
	}
	return p.TotalEnergy / p.Window / 1000
}

// GlitchFraction is the share of total energy dissipated in partial-swing
// transitions.
func (p PowerReport) GlitchFraction() float64 {
	if p.TotalEnergy == 0 {
		return 0
	}
	return p.GlitchEnergy / p.TotalEnergy
}

// Power derives the report from a simulation result. It reads the run's
// compiled IR directly: net loads are the precomputed Load slab and name
// lookups go through the IR's dense net table, so no netlist pointers are
// chased and no per-net load is recomputed.
func Power(res *sim.Result, window float64) PowerReport {
	ir := res.IR()
	vdd := ir.VDD
	rep := PowerReport{Window: window}
	for id := int32(0); id < int32(ir.NumNets()); id++ {
		wf := res.WaveformAt(id)
		cl := ir.Load[id]
		var e float64
		full := 0
		for _, tr := range wf.Transitions() {
			de := cl * vdd * tr.Swing()
			e += de
			if tr.FullSwing() {
				full++
			} else {
				rep.GlitchEnergy += de
			}
		}
		rep.TotalEnergy += e
		if wf.Len() > 0 {
			rep.PerNet = append(rep.PerNet, NetPower{
				Net: ir.NetName[id], Energy: e, Transitions: wf.Len(), FullSwing: full,
			})
		}
	}
	sort.Slice(rep.PerNet, func(i, j int) bool {
		if rep.PerNet[i].Energy != rep.PerNet[j].Energy {
			return rep.PerNet[i].Energy > rep.PerNet[j].Energy
		}
		return rep.PerNet[i].Net < rep.PerNet[j].Net
	})
	return rep
}

// Format renders the report with the top-n nets.
func (p PowerReport) Format(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "total switching energy: %.1f fJ over %g ns (avg %.3f mW)\n",
		p.TotalEnergy, p.Window, p.AveragePowerMW())
	fmt.Fprintf(&b, "partial-swing (glitch) energy: %.1f fJ (%.0f%%)\n",
		p.GlitchEnergy, 100*p.GlitchFraction())
	fmt.Fprintf(&b, "%-12s %10s %8s %8s\n", "net", "energy(fJ)", "trans", "full")
	for i, np := range p.PerNet {
		if topN > 0 && i >= topN {
			fmt.Fprintf(&b, "... and %d more nets\n", len(p.PerNet)-topN)
			break
		}
		fmt.Fprintf(&b, "%-12s %10.2f %8d %8d\n", np.Net, np.Energy, np.Transitions, np.FullSwing)
	}
	return b.String()
}
