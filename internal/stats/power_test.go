package stats

import (
	"strings"
	"testing"

	"halotis/internal/cellib"
	"halotis/internal/circuits"
	"halotis/internal/sim"
)

func runChain(t *testing.T, m sim.Model) *sim.Result {
	t.Helper()
	lib := cellib.Default06()
	ckt, err := circuits.InverterChain(lib, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Stimulus{"in": sim.InputWave{Edges: []sim.InputEdge{
		{Time: 1, Rising: true, Slew: 0.15},
		{Time: 5, Rising: false, Slew: 0.15},
		{Time: 5.18, Rising: true, Slew: 0.15}, // glitch
	}}}
	res, err := sim.New(ckt, sim.Options{Model: m}).Run(st, 20)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPowerBasics(t *testing.T) {
	res := runChain(t, sim.DDM)
	p := Power(res, 20)
	if p.TotalEnergy <= 0 {
		t.Fatal("no energy recorded")
	}
	if p.AveragePowerMW() <= 0 {
		t.Error("zero average power")
	}
	if p.GlitchFraction() < 0 || p.GlitchFraction() > 1 {
		t.Errorf("glitch fraction %g out of range", p.GlitchFraction())
	}
	// Energy ranking is descending.
	for i := 1; i < len(p.PerNet); i++ {
		if p.PerNet[i].Energy > p.PerNet[i-1].Energy {
			t.Fatal("PerNet not sorted by energy")
		}
	}
	out := p.Format(3)
	if !strings.Contains(out, "total switching energy") {
		t.Errorf("format output wrong:\n%s", out)
	}
	if len(p.PerNet) > 3 && !strings.Contains(out, "more nets") {
		t.Error("truncation note missing")
	}
}

func TestPowerCDMExceedsDDM(t *testing.T) {
	ddm := Power(runChain(t, sim.DDM), 20)
	cdm := Power(runChain(t, sim.CDM), 20)
	if cdm.TotalEnergy <= ddm.TotalEnergy {
		t.Errorf("CDM energy %g should exceed DDM %g (glitch propagates)",
			cdm.TotalEnergy, ddm.TotalEnergy)
	}
}

func TestPowerZeroWindow(t *testing.T) {
	var p PowerReport
	if p.AveragePowerMW() != 0 || p.GlitchFraction() != 0 {
		t.Error("zero report should return zeros")
	}
}
