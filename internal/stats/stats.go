// Package stats aggregates simulation results into the paper's evaluation
// quantities: the event/filtered-event counts of Table 1, the CPU times of
// Table 2, and switching-activity/glitch-power summaries.
package stats

import (
	"fmt"
	"strings"
	"time"

	"halotis/internal/sim"
)

// Table1Row reproduces one row of the paper's Table 1: event counts under
// DDM and CDM, the relative CDM overestimation, and the filtered (deleted)
// event counts.
type Table1Row struct {
	Sequence    string
	EventsDDM   uint64
	EventsCDM   uint64
	OverestPct  float64
	FilteredDDM uint64
	FilteredCDM uint64
}

// NewTable1Row derives the row from two runs of the same workload.
func NewTable1Row(sequence string, ddm, cdm sim.Stats) Table1Row {
	r := Table1Row{
		Sequence:    sequence,
		EventsDDM:   ddm.EventsProcessed,
		EventsCDM:   cdm.EventsProcessed,
		FilteredDDM: ddm.EventsFiltered,
		FilteredCDM: cdm.EventsFiltered,
	}
	if ddm.EventsProcessed > 0 {
		r.OverestPct = 100 * (float64(cdm.EventsProcessed) - float64(ddm.EventsProcessed)) / float64(ddm.EventsProcessed)
	}
	return r
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %12s %12s\n",
		"Sequence", "Ev(DDM)", "Ev(CDM)", "Overst.%", "Filt(DDM)", "Filt(CDM)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %10d %10d %10.0f %12d %12d\n",
			r.Sequence, r.EventsDDM, r.EventsCDM, r.OverestPct, r.FilteredDDM, r.FilteredCDM)
	}
	return b.String()
}

// Table2Row reproduces one row of the paper's Table 2: CPU time per
// simulator for one workload.
type Table2Row struct {
	Sequence string
	Analog   time.Duration // the HSPICE column
	DDM      time.Duration
	CDM      time.Duration
}

// SpeedupDDM returns how many times faster HALOTIS-DDM is than the analog
// reference.
func (r Table2Row) SpeedupDDM() float64 {
	if r.DDM <= 0 {
		return 0
	}
	return float64(r.Analog) / float64(r.DDM)
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %14s %12s\n",
		"Sequence", "Analog(ref)", "HALOTIS-DDM", "HALOTIS-CDM", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %14s %14s %14s %11.0fx\n",
			r.Sequence, fmtDur(r.Analog), fmtDur(r.DDM), fmtDur(r.CDM), r.SpeedupDDM())
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/1e3)
	}
}

// ActivityComparison summarizes switching activity of the same workload
// under DDM and CDM — the glitch-power overestimation the paper motivates
// with (conventional models overestimate activity by up to ~40-50%).
type ActivityComparison struct {
	TransitionsDDM int
	TransitionsCDM int
	// EnergyDDM/CDM are normalized switching energies (sum over nets of
	// (swing/VDD)^2 per transition), proportional to dynamic power.
	EnergyDDM float64
	EnergyCDM float64
}

// TransOverestPct is the CDM transition-count overestimation in percent.
func (a ActivityComparison) TransOverestPct() float64 {
	if a.TransitionsDDM == 0 {
		return 0
	}
	return 100 * float64(a.TransitionsCDM-a.TransitionsDDM) / float64(a.TransitionsDDM)
}

// EnergyOverestPct is the CDM switching-energy overestimation in percent.
func (a ActivityComparison) EnergyOverestPct() float64 {
	if a.EnergyDDM == 0 {
		return 0
	}
	return 100 * (a.EnergyCDM - a.EnergyDDM) / a.EnergyDDM
}

// CompareActivity derives the comparison from two runs.
func CompareActivity(ddm, cdm *sim.Result) ActivityComparison {
	td, ed := ddm.TotalActivity()
	tc, ec := cdm.TotalActivity()
	return ActivityComparison{
		TransitionsDDM: td, TransitionsCDM: tc,
		EnergyDDM: ed, EnergyCDM: ec,
	}
}

// String renders the comparison for reports.
func (a ActivityComparison) String() string {
	return fmt.Sprintf("transitions DDM=%d CDM=%d (+%.0f%%); energy DDM=%.1f CDM=%.1f (+%.0f%%)",
		a.TransitionsDDM, a.TransitionsCDM, a.TransOverestPct(),
		a.EnergyDDM, a.EnergyCDM, a.EnergyOverestPct())
}
