package stats

import (
	"strings"
	"testing"
	"time"

	"halotis/internal/sim"
)

func TestTable1Row(t *testing.T) {
	ddm := sim.Stats{EventsProcessed: 959, EventsFiltered: 27}
	cdm := sim.Stats{EventsProcessed: 1411, EventsFiltered: 1}
	r := NewTable1Row("seq1", ddm, cdm)
	if r.EventsDDM != 959 || r.EventsCDM != 1411 {
		t.Errorf("events = %d/%d", r.EventsDDM, r.EventsCDM)
	}
	// The paper reports 47% for these counts.
	if r.OverestPct < 47 || r.OverestPct > 47.2 {
		t.Errorf("overestimation = %g, want ~47", r.OverestPct)
	}
	if r.FilteredDDM != 27 || r.FilteredCDM != 1 {
		t.Errorf("filtered = %d/%d", r.FilteredDDM, r.FilteredCDM)
	}
}

func TestTable1RowZeroSafe(t *testing.T) {
	r := NewTable1Row("empty", sim.Stats{}, sim.Stats{})
	if r.OverestPct != 0 {
		t.Errorf("zero-event overestimation = %g", r.OverestPct)
	}
}

func TestFormatTable1(t *testing.T) {
	rows := []Table1Row{NewTable1Row("0x0, 7x7, 5xA, Ex6, FxF",
		sim.Stats{EventsProcessed: 959, EventsFiltered: 27},
		sim.Stats{EventsProcessed: 1411, EventsFiltered: 1})}
	out := FormatTable1(rows)
	for _, want := range []string{"Sequence", "959", "1411", "47", "27"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Speedup(t *testing.T) {
	r := Table2Row{Analog: 1129 * time.Millisecond, DDM: 3900 * time.Microsecond}
	if s := r.SpeedupDDM(); s < 289 || s > 290 {
		t.Errorf("speedup = %g, want ~289.5", s)
	}
	zero := Table2Row{}
	if zero.SpeedupDDM() != 0 {
		t.Error("zero row speedup should be 0")
	}
}

func TestFormatTable2(t *testing.T) {
	rows := []Table2Row{{
		Sequence: "seq",
		Analog:   2 * time.Second,
		DDM:      500 * time.Microsecond,
		CDM:      2 * time.Millisecond,
	}}
	out := FormatTable2(rows)
	for _, want := range []string{"2.00s", "500µs", "2.00ms", "4000x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestActivityOverestimation(t *testing.T) {
	a := ActivityComparison{
		TransitionsDDM: 100, TransitionsCDM: 150,
		EnergyDDM: 80, EnergyCDM: 120,
	}
	if got := a.TransOverestPct(); got != 50 {
		t.Errorf("transition overestimation = %g, want 50", got)
	}
	if got := a.EnergyOverestPct(); got != 50 {
		t.Errorf("energy overestimation = %g, want 50", got)
	}
	if s := a.String(); !strings.Contains(s, "+50%") {
		t.Errorf("String = %q", s)
	}
	var zero ActivityComparison
	if zero.TransOverestPct() != 0 || zero.EnergyOverestPct() != 0 {
		t.Error("zero comparison should report 0%")
	}
}
