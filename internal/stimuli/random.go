package stimuli

import (
	"fmt"

	"halotis/internal/netlist"
	"halotis/internal/sim"
)

// RandomStimulus builds a deterministic random vector stimulus over the
// given input names: count vectors applied at the given period, toggling
// each input with independent fair coin flips per vector. It is the drive
// the size-scaling benchmarks use, where hand-written stimuli cannot cover
// thousands of inputs.
func RandomStimulus(inputs []string, count int, period, slew float64, seed int64) (sim.Stimulus, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("stimuli: random stimulus over no inputs")
	}
	if count < 1 {
		return nil, fmt.Errorf("stimuli: random stimulus needs >= 1 vectors, got %d", count)
	}
	return Sequence(RandomVectors(inputs, count, seed), period, slew)
}

// RandomStimulusFor is RandomStimulus applied to a circuit's primary inputs
// in declaration order.
func RandomStimulusFor(ckt *netlist.Circuit, count int, period, slew float64, seed int64) (sim.Stimulus, error) {
	names := make([]string, len(ckt.Inputs))
	for i, in := range ckt.Inputs {
		names[i] = in.Name
	}
	return RandomStimulus(names, count, period, slew, seed)
}
