// Package stimuli builds input drive patterns for the simulators: vector
// sequences (including the two multiplication sequences of the paper's
// evaluation), pulse trains, and random vectors.
package stimuli

import (
	"fmt"
	"math/rand"

	"halotis/internal/sim"
)

// Vector assigns one logic level per primary input.
type Vector map[string]bool

// DefaultSlew is the input transition time used when none is specified,
// ns.
const DefaultSlew = 0.3

// Sequence converts a list of vectors applied at a fixed period into a
// stimulus: vectors[0] sets the initial levels; each later vector toggles
// the inputs whose value changes at time k*period. Bits absent from a
// vector hold their previous level.
func Sequence(vectors []Vector, period, slew float64) (sim.Stimulus, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("stimuli: empty vector sequence")
	}
	if period <= 0 {
		return nil, fmt.Errorf("stimuli: non-positive period %g", period)
	}
	if slew <= 0 {
		slew = DefaultSlew
	}
	st := sim.Stimulus{}
	state := map[string]bool{}
	for name, v := range vectors[0] {
		st[name] = sim.InputWave{Init: v}
		state[name] = v
	}
	for k := 1; k < len(vectors); k++ {
		t := float64(k) * period
		for name, v := range vectors[k] {
			cur, seen := state[name]
			if !seen {
				// Input appearing mid-sequence starts at 0.
				cur = false
				st[name] = sim.InputWave{}
			}
			if v == cur {
				continue
			}
			w := st[name]
			w.Edges = append(w.Edges, sim.InputEdge{Time: t, Rising: v, Slew: slew})
			st[name] = w
			state[name] = v
		}
	}
	return st, nil
}

// BitVector expands an integer into named single-bit inputs prefix0..
// prefix(width-1), LSB first.
func BitVector(prefix string, value uint64, width int) Vector {
	v := Vector{}
	for i := 0; i < width; i++ {
		v[fmt.Sprintf("%s%d", prefix, i)] = value>>i&1 == 1
	}
	return v
}

// Merge combines vectors; later arguments win on conflicts.
func Merge(vs ...Vector) Vector {
	out := Vector{}
	for _, v := range vs {
		for k, b := range v {
			out[k] = b
		}
	}
	return out
}

// MultiplierPair is one AxB operand pair of a multiplication sequence.
type MultiplierPair struct {
	A, B uint64
}

// MultiplierSequence builds the stimulus applying the operand pairs to an
// n x m multiplier (inputs a0.., b0..) at the given period.
func MultiplierSequence(pairs []MultiplierPair, n, m int, period, slew float64) (sim.Stimulus, error) {
	vectors := make([]Vector, len(pairs))
	for i, p := range pairs {
		vectors[i] = Merge(BitVector("a", p.A, n), BitVector("b", p.B, m))
	}
	return Sequence(vectors, period, slew)
}

// PaperSequence1 is the paper's Fig. 6 / Table 1 first input sequence:
// 0x0, 7x7, 5xA, Ex6, FxF.
func PaperSequence1() []MultiplierPair {
	return []MultiplierPair{
		{0x0, 0x0}, {0x7, 0x7}, {0x5, 0xA}, {0xE, 0x6}, {0xF, 0xF},
	}
}

// PaperSequence2 is the paper's Fig. 7 / Table 1 second input sequence:
// 0x0, FxF, 0x0, FxF, 0x0.
func PaperSequence2() []MultiplierPair {
	return []MultiplierPair{
		{0x0, 0x0}, {0xF, 0xF}, {0x0, 0x0}, {0xF, 0xF}, {0x0, 0x0},
	}
}

// PaperPeriod is the vector period of the paper's figures (5 ns per vector
// over a 25 ns window).
const PaperPeriod = 5.0

// PulseTrain drives one input with count pulses of the given width,
// separated by gap, starting at t0.
func PulseTrain(input string, t0, width, gap float64, count int, slew float64) (sim.Stimulus, error) {
	if width <= 0 || gap < 0 || count < 1 {
		return nil, fmt.Errorf("stimuli: bad pulse train (width %g, gap %g, count %d)", width, gap, count)
	}
	if slew <= 0 {
		slew = DefaultSlew
	}
	var edges []sim.InputEdge
	t := t0
	for i := 0; i < count; i++ {
		edges = append(edges,
			sim.InputEdge{Time: t, Rising: true, Slew: slew},
			sim.InputEdge{Time: t + width, Rising: false, Slew: slew},
		)
		t += width + gap
	}
	return sim.Stimulus{input: sim.InputWave{Edges: edges}}, nil
}

// RandomVectors produces a deterministic random vector sequence over the
// given input names.
func RandomVectors(names []string, count int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Vector, count)
	for i := range out {
		v := Vector{}
		for _, n := range names {
			v[n] = rng.Intn(2) == 1
		}
		out[i] = v
	}
	return out
}
