package stimuli

import (
	"testing"

	"halotis/internal/sim"
)

func TestSequenceBasic(t *testing.T) {
	vs := []Vector{
		{"a": false, "b": true},
		{"a": true, "b": true},  // only a toggles
		{"a": true, "b": false}, // only b toggles
	}
	st, err := Sequence(vs, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	a := st["a"]
	if a.Init != false || len(a.Edges) != 1 {
		t.Fatalf("a = %+v", a)
	}
	if a.Edges[0].Time != 5 || !a.Edges[0].Rising {
		t.Errorf("a edge = %+v", a.Edges[0])
	}
	b := st["b"]
	if b.Init != true || len(b.Edges) != 1 {
		t.Fatalf("b = %+v", b)
	}
	if b.Edges[0].Time != 10 || b.Edges[0].Rising {
		t.Errorf("b edge = %+v", b.Edges[0])
	}
}

func TestSequenceHoldsMissingBits(t *testing.T) {
	vs := []Vector{
		{"a": true},
		{},          // nothing changes
		{"a": true}, // same value: no edge
	}
	st, err := Sequence(vs, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(st["a"].Edges) != 0 {
		t.Errorf("expected no edges, got %+v", st["a"].Edges)
	}
}

func TestSequenceMidAppearingInput(t *testing.T) {
	vs := []Vector{
		{"a": false},
		{"b": true}, // b appears at k=1, rising from implicit 0
	}
	st, err := Sequence(vs, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b := st["b"]
	if b.Init != false || len(b.Edges) != 1 || b.Edges[0].Time != 3 {
		t.Errorf("b = %+v", b)
	}
}

func TestSequenceErrors(t *testing.T) {
	if _, err := Sequence(nil, 5, 0.3); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := Sequence([]Vector{{}}, 0, 0.3); err == nil {
		t.Error("zero period accepted")
	}
}

func TestBitVector(t *testing.T) {
	v := BitVector("a", 0b1010, 4)
	want := Vector{"a0": false, "a1": true, "a2": false, "a3": true}
	for k, b := range want {
		if v[k] != b {
			t.Errorf("%s = %v, want %v", k, v[k], b)
		}
	}
}

func TestMerge(t *testing.T) {
	v := Merge(Vector{"x": true, "y": false}, Vector{"y": true})
	if !v["x"] || !v["y"] {
		t.Errorf("merge = %v", v)
	}
}

func TestMultiplierSequencePaper1(t *testing.T) {
	st, err := MultiplierSequence(PaperSequence1(), 4, 4, PaperPeriod, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Sequence: A = 0,7,5,E,F. a0: 0,1,1,0,1 -> edges at 5 (rise),
	// 15 (fall), 20 (rise).
	a0 := st["a0"]
	if a0.Init {
		t.Error("a0 init should be 0")
	}
	wantTimes := []float64{5, 15, 20}
	if len(a0.Edges) != len(wantTimes) {
		t.Fatalf("a0 edges = %+v", a0.Edges)
	}
	for i, w := range wantTimes {
		if a0.Edges[i].Time != w {
			t.Errorf("a0 edge %d at %g, want %g", i, a0.Edges[i].Time, w)
		}
	}
	// Validate against a synthetic circuit's input set.
	names := map[string]bool{}
	for i := 0; i < 4; i++ {
		names["a"+string(rune('0'+i))] = true
		names["b"+string(rune('0'+i))] = true
	}
	if err := sim.Stimulus(st).Validate(names); err != nil {
		t.Errorf("stimulus invalid: %v", err)
	}
}

func TestMultiplierSequencePaper2(t *testing.T) {
	st, err := MultiplierSequence(PaperSequence2(), 4, 4, PaperPeriod, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Every a/b bit toggles at 5, 10, 15, 20.
	for _, name := range []string{"a0", "a3", "b1"} {
		w := st[name]
		if len(w.Edges) != 4 {
			t.Fatalf("%s edges = %d, want 4 (%+v)", name, len(w.Edges), w.Edges)
		}
	}
	if st.LastEdgeTime() != 20 {
		t.Errorf("last edge = %g, want 20", st.LastEdgeTime())
	}
}

func TestPulseTrain(t *testing.T) {
	st, err := PulseTrain("in", 1, 0.5, 1.5, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	edges := st["in"].Edges
	if len(edges) != 6 {
		t.Fatalf("edges = %d, want 6", len(edges))
	}
	if edges[2].Time != 3 || !edges[2].Rising {
		t.Errorf("second pulse start = %+v", edges[2])
	}
	if _, err := PulseTrain("in", 0, 0, 1, 1, 0.3); err == nil {
		t.Error("zero-width pulse train accepted")
	}
}

func TestRandomVectorsDeterministic(t *testing.T) {
	names := []string{"a", "b", "c"}
	v1 := RandomVectors(names, 10, 42)
	v2 := RandomVectors(names, 10, 42)
	for i := range v1 {
		for _, n := range names {
			if v1[i][n] != v2[i][n] {
				t.Fatalf("vector %d input %s differs", i, n)
			}
		}
	}
	v3 := RandomVectors(names, 10, 43)
	same := true
	for i := range v1 {
		for _, n := range names {
			if v1[i][n] != v3[i][n] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical vectors")
	}
}

func TestSequenceDefaultSlew(t *testing.T) {
	st, err := Sequence([]Vector{{"a": false}, {"a": true}}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st["a"].Edges[0].Slew != DefaultSlew {
		t.Errorf("slew = %g, want default %g", st["a"].Edges[0].Slew, DefaultSlew)
	}
}
