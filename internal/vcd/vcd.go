// Package vcd writes IEEE-1364-style Value Change Dump files from HALOTIS
// logic waveforms or analog traces, for inspection in standard waveform
// viewers (GTKWave etc.).
package vcd

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Signal is one dumped signal: a name and its logic change list.
type Signal struct {
	// Name as shown in the viewer.
	Name string
	// Init is the level before the first change.
	Init bool
	// Changes are (time ns, new level) pairs in ascending time order.
	Changes []Change
}

// Change is one value change.
type Change struct {
	Time  float64
	Value bool
}

// Writer accumulates signals and renders the VCD file.
type Writer struct {
	// Module is the scope name; default "halotis".
	Module string
	// Timescale in ps per time unit; times are in ns and converted.
	// Default 1 ps resolution.
	signals []Signal
}

// Add registers one signal.
func (w *Writer) Add(s Signal) {
	w.signals = append(w.signals, s)
}

// idCode produces the short VCD identifier for signal index i.
func idCode(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	for {
		b.WriteByte(alphabet[i%len(alphabet)])
		i /= len(alphabet)
		if i == 0 {
			break
		}
	}
	return b.String()
}

// Write renders the dump. Times are converted to integer picoseconds.
func (w *Writer) Write(out io.Writer) error {
	module := w.Module
	if module == "" {
		module = "halotis"
	}
	var b strings.Builder
	b.WriteString("$date\n  (halotis reproduction)\n$end\n")
	b.WriteString("$version\n  halotis vcd writer\n$end\n")
	b.WriteString("$timescale 1ps $end\n")
	fmt.Fprintf(&b, "$scope module %s $end\n", module)
	for i, s := range w.signals {
		fmt.Fprintf(&b, "$var wire 1 %s %s $end\n", idCode(i), s.Name)
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Initial values.
	b.WriteString("#0\n$dumpvars\n")
	for i, s := range w.signals {
		fmt.Fprintf(&b, "%s%s\n", bit(s.Init), idCode(i))
	}
	b.WriteString("$end\n")

	// Merge all changes in time order.
	type ev struct {
		ps  int64
		sig int
		val bool
	}
	var evs []ev
	for i, s := range w.signals {
		for _, c := range s.Changes {
			evs = append(evs, ev{ps: int64(c.Time*1000 + 0.5), sig: i, val: c.Value})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].ps < evs[j].ps })
	lastPS := int64(-1)
	for _, e := range evs {
		if e.ps != lastPS {
			fmt.Fprintf(&b, "#%d\n", e.ps)
			lastPS = e.ps
		}
		fmt.Fprintf(&b, "%s%s\n", bit(e.val), idCode(e.sig))
	}
	_, err := io.WriteString(out, b.String())
	return err
}

func bit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// FromCrossings builds a Signal from (time, rising) crossing pairs, as
// produced by wave.Waveform.Crossings or analog edge extraction.
func FromCrossings(name string, init bool, times []float64, rising []bool) Signal {
	s := Signal{Name: name, Init: init}
	for i := range times {
		s.Changes = append(s.Changes, Change{Time: times[i], Value: rising[i]})
	}
	return s
}
