package vcd

import (
	"strings"
	"testing"
)

func TestWriterBasic(t *testing.T) {
	var w Writer
	w.Add(Signal{Name: "a", Init: false, Changes: []Change{{Time: 1.5, Value: true}, {Time: 3, Value: false}}})
	w.Add(Signal{Name: "b", Init: true, Changes: []Change{{Time: 1.5, Value: false}}})
	var out strings.Builder
	if err := w.Write(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$var wire 1 ! a $end",
		"$var wire 1 \" b $end",
		"$dumpvars",
		"#1500",
		"#3000",
		"$enddefinitions $end",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
	// Initial values dumped at #0.
	if !strings.Contains(s, "0!") || !strings.Contains(s, "1\"") {
		t.Error("initial values missing")
	}
}

func TestIDCodeUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("duplicate id %q at %d", c, i)
		}
		seen[c] = true
	}
}

func TestChangesSortedAcrossSignals(t *testing.T) {
	var w Writer
	w.Add(Signal{Name: "x", Changes: []Change{{Time: 5, Value: true}}})
	w.Add(Signal{Name: "y", Changes: []Change{{Time: 2, Value: true}}})
	var out strings.Builder
	if err := w.Write(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	i2 := strings.Index(s, "#2000")
	i5 := strings.Index(s, "#5000")
	if i2 < 0 || i5 < 0 || i2 > i5 {
		t.Errorf("timestamps out of order: %d %d", i2, i5)
	}
}

func TestFromCrossings(t *testing.T) {
	s := FromCrossings("n", true, []float64{1, 2}, []bool{false, true})
	if s.Name != "n" || !s.Init || len(s.Changes) != 2 {
		t.Errorf("signal = %+v", s)
	}
	if s.Changes[0].Value || !s.Changes[1].Value {
		t.Error("change values wrong")
	}
}

func TestDefaultModuleName(t *testing.T) {
	var w Writer
	w.Add(Signal{Name: "a"})
	var out strings.Builder
	if err := w.Write(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "$scope module halotis $end") {
		t.Error("default module name missing")
	}
}
