// Package wave models signals as piecewise-linear voltage waveforms built
// from linear ramp transitions, following the stimulus treatment of the
// HALOTIS simulator (Ruiz de Clavijo et al., DATE 2001).
//
// A Transition is a linear ramp that starts at a voltage V0 at time Start
// and heads toward 0 or VDD with a full-swing transition time Slew (the time
// a ramp takes to traverse the whole 0..VDD swing). A later transition on
// the same signal truncates the ramp before it completes, which is how
// partial-swing "runt" pulses — the central object of the degradation delay
// model — arise.
//
// Times are in nanoseconds, voltages in volts.
package wave

import (
	"fmt"
	"math"
)

// Transition is one linear ramp of a signal waveform.
type Transition struct {
	// Start is the time (ns) the ramp begins.
	Start float64
	// Slew is the full-swing (0 -> VDD) transition time in ns. The ramp
	// slope magnitude is VDD/Slew regardless of the starting voltage.
	Slew float64
	// V0 is the voltage at Start. Partial-swing pulses make V0 take
	// intermediate values; clean transitions start at 0 or VDD.
	V0 float64
	// Rising reports the ramp direction: toward VDD when true, toward 0
	// when false.
	Rising bool
	// VDD is the supply rail the ramp saturates at.
	VDD float64
	// End is the time the ramp was truncated by a successor transition.
	// +Inf while the transition is the last one on its signal.
	End float64
	// Seq is a per-signal sequence number assigned by the Waveform; it
	// identifies the transition when reconciling scheduled events.
	Seq int
}

// Target returns the rail the ramp heads toward: VDD when rising, 0 when
// falling.
func (tr *Transition) Target() float64 {
	if tr.Rising {
		return tr.VDD
	}
	return 0
}

// slope returns the signed dV/dt of the ramp in V/ns.
func (tr *Transition) slope() float64 {
	s := tr.VDD / tr.Slew
	if !tr.Rising {
		return -s
	}
	return s
}

// settleTime returns the time at which the untruncated ramp reaches its
// target rail.
func (tr *Transition) settleTime() float64 {
	return tr.Start + math.Abs(tr.Target()-tr.V0)/math.Abs(tr.slope())
}

// V returns the ramp voltage at time t, honoring both rail saturation and
// truncation at End. For t < Start it returns V0.
func (tr *Transition) V(t float64) float64 {
	if t < tr.Start {
		return tr.V0
	}
	if t > tr.End {
		t = tr.End
	}
	v := tr.V0 + tr.slope()*(t-tr.Start)
	if tr.Rising {
		return math.Min(v, tr.VDD)
	}
	return math.Max(v, 0)
}

// VEnd returns the voltage the ramp has reached when it ends (by truncation
// or by settling at the rail).
func (tr *Transition) VEnd() float64 {
	if math.IsInf(tr.End, 1) {
		return tr.Target()
	}
	return tr.V(tr.End)
}

// Swing returns the absolute voltage excursion the (possibly truncated)
// ramp achieves.
func (tr *Transition) Swing() float64 {
	return math.Abs(tr.VEnd() - tr.V0)
}

// FullSwing reports whether the ramp reaches its target rail before being
// truncated.
func (tr *Transition) FullSwing() bool {
	return tr.settleTime() <= tr.End
}

// Crossing returns the time at which the ramp crosses the threshold vt in
// its own direction (upward for rising ramps, downward for falling ones),
// ignoring any future truncation. The boolean reports whether the
// untruncated ramp crosses at all: a rising ramp starting at or above vt, or
// a falling ramp starting at or below vt, never does.
//
// The HALOTIS engine schedules receiver events from this time and cancels
// them if a later transition truncates the ramp first.
func (tr *Transition) Crossing(vt float64) (float64, bool) {
	if tr.Rising {
		if tr.V0 >= vt || vt > tr.VDD {
			return 0, false
		}
		return tr.Start + (vt-tr.V0)*tr.Slew/tr.VDD, true
	}
	if tr.V0 <= vt || vt < 0 {
		return 0, false
	}
	return tr.Start + (tr.V0-vt)*tr.Slew/tr.VDD, true
}

// CrossingTruncated is like Crossing but returns false if the ramp is
// truncated (or saturates) before reaching vt.
func (tr *Transition) CrossingTruncated(vt float64) (float64, bool) {
	t, ok := tr.Crossing(vt)
	if !ok {
		return 0, false
	}
	if t > tr.End || t > tr.settleTime() {
		return 0, false
	}
	return t, true
}

// Validate reports whether the transition is internally consistent.
func (tr *Transition) Validate() error {
	switch {
	case tr.VDD <= 0:
		return fmt.Errorf("wave: transition VDD %.3g must be positive", tr.VDD)
	case tr.Slew <= 0:
		return fmt.Errorf("wave: transition slew %.3g must be positive", tr.Slew)
	case tr.V0 < 0 || tr.V0 > tr.VDD:
		return fmt.Errorf("wave: transition V0 %.3g outside rails [0, %.3g]", tr.V0, tr.VDD)
	case math.IsNaN(tr.Start) || math.IsInf(tr.Start, 0):
		return fmt.Errorf("wave: transition start %v not finite", tr.Start)
	case tr.End < tr.Start:
		return fmt.Errorf("wave: transition end %.4g before start %.4g", tr.End, tr.Start)
	}
	return nil
}

// String renders the transition compactly for debugging and test failures.
func (tr *Transition) String() string {
	dir := "fall"
	if tr.Rising {
		dir = "rise"
	}
	end := "…"
	if !math.IsInf(tr.End, 1) {
		end = fmt.Sprintf("%.4g", tr.End)
	}
	return fmt.Sprintf("%s@%.4gns slew=%.4g V0=%.3g end=%s #%d", dir, tr.Start, tr.Slew, tr.V0, end, tr.Seq)
}
