package wave

import (
	"math"
	"testing"
	"testing/quick"
)

const vdd = 5.0

func rise(start, slew, v0 float64) Transition {
	return Transition{Start: start, Slew: slew, V0: v0, Rising: true, VDD: vdd, End: math.Inf(1)}
}

func fall(start, slew, v0 float64) Transition {
	return Transition{Start: start, Slew: slew, V0: v0, Rising: false, VDD: vdd, End: math.Inf(1)}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTransitionTarget(t *testing.T) {
	r := rise(0, 1, 0)
	if got := r.Target(); got != vdd {
		t.Errorf("rising target = %g, want %g", got, vdd)
	}
	f := fall(0, 1, vdd)
	if got := f.Target(); got != 0 {
		t.Errorf("falling target = %g, want 0", got)
	}
}

func TestTransitionVoltageRamp(t *testing.T) {
	// Full-swing rise from 0 with slew 2 ns: slope VDD/2 per ns.
	r := rise(10, 2, 0)
	cases := []struct{ t, want float64 }{
		{9, 0},        // before start
		{10, 0},       // at start
		{11, vdd / 2}, // halfway
		{12, vdd},     // settled
		{20, vdd},     // saturated
	}
	for _, c := range cases {
		if got := r.V(c.t); !almostEq(got, c.want) {
			t.Errorf("V(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestTransitionPartialStart(t *testing.T) {
	// Rise starting from 2 V still uses full-swing slope VDD/Slew.
	r := rise(0, 5, 2)
	if got := r.V(1); !almostEq(got, 3) {
		t.Errorf("V(1) = %g, want 3", got)
	}
	// settles at VDD after (5-2)/ (5/5) = 3 ns
	if got := r.settleTime(); !almostEq(got, 3) {
		t.Errorf("settleTime = %g, want 3", got)
	}
}

func TestTransitionTruncation(t *testing.T) {
	r := rise(0, 5, 0)
	r.End = 2 // truncated after 2 ns: reached 2 V
	if got := r.VEnd(); !almostEq(got, 2) {
		t.Errorf("VEnd = %g, want 2", got)
	}
	if got := r.V(4); !almostEq(got, 2) {
		t.Errorf("V after truncation = %g, want 2 (held)", got)
	}
	if r.FullSwing() {
		t.Error("truncated ramp reported full swing")
	}
	if got := r.Swing(); !almostEq(got, 2) {
		t.Errorf("Swing = %g, want 2", got)
	}
}

func TestCrossingRising(t *testing.T) {
	r := rise(0, 5, 0) // 1 V per ns
	tc, ok := r.Crossing(2.5)
	if !ok || !almostEq(tc, 2.5) {
		t.Errorf("Crossing(2.5) = %g,%v want 2.5,true", tc, ok)
	}
	// Starting above the threshold: no crossing.
	r2 := rise(0, 5, 3)
	if _, ok := r2.Crossing(2.5); ok {
		t.Error("rise from above threshold should not cross")
	}
	// Starting exactly at threshold: no crossing (strict).
	r3 := rise(0, 5, 2.5)
	if _, ok := r3.Crossing(2.5); ok {
		t.Error("rise from exactly threshold should not cross")
	}
}

func TestCrossingFalling(t *testing.T) {
	f := fall(1, 5, vdd)
	tc, ok := f.Crossing(2.5)
	if !ok || !almostEq(tc, 3.5) {
		t.Errorf("Crossing(2.5) = %g,%v want 3.5,true", tc, ok)
	}
	f2 := fall(0, 5, 2)
	if _, ok := f2.Crossing(2.5); ok {
		t.Error("fall from below threshold should not cross")
	}
}

func TestCrossingTruncated(t *testing.T) {
	r := rise(0, 5, 0)
	r.End = 2 // reaches only 2 V
	if _, ok := r.CrossingTruncated(2.5); ok {
		t.Error("ramp truncated below threshold should not cross")
	}
	if tc, ok := r.CrossingTruncated(1.5); !ok || !almostEq(tc, 1.5) {
		t.Errorf("CrossingTruncated(1.5) = %g,%v want 1.5,true", tc, ok)
	}
	// Crossing beyond settle time: threshold above VDD is impossible anyway;
	// here check that saturation is honored for a partial ramp.
	r2 := rise(0, 5, 4)
	r2.End = math.Inf(1)
	if tc, ok := r2.CrossingTruncated(4.5); !ok || !almostEq(tc, 0.5) {
		t.Errorf("CrossingTruncated(4.5) = %g,%v want 0.5,true", tc, ok)
	}
}

func TestTransitionValidate(t *testing.T) {
	good := rise(0, 1, 0)
	if err := good.Validate(); err != nil {
		t.Errorf("valid transition rejected: %v", err)
	}
	bad := []Transition{
		{Start: 0, Slew: 0, V0: 0, Rising: true, VDD: vdd, End: math.Inf(1)},
		{Start: 0, Slew: 1, V0: -1, Rising: true, VDD: vdd, End: math.Inf(1)},
		{Start: 0, Slew: 1, V0: 6, Rising: true, VDD: vdd, End: math.Inf(1)},
		{Start: 0, Slew: 1, V0: 0, Rising: true, VDD: 0, End: math.Inf(1)},
		{Start: 5, Slew: 1, V0: 0, Rising: true, VDD: vdd, End: 4},
		{Start: math.NaN(), Slew: 1, V0: 0, Rising: true, VDD: vdd, End: math.Inf(1)},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad transition %d accepted: %v", i, tr)
		}
	}
}

func TestTransitionString(t *testing.T) {
	r := rise(1, 2, 0)
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
	f := fall(1, 2, vdd)
	f.End = 3
	if s := f.String(); s == "" {
		t.Error("empty String()")
	}
}

// Property: crossing time, when it exists, always lies inside the ramp's
// active interval and the ramp voltage there equals the threshold.
func TestCrossingConsistencyProperty(t *testing.T) {
	f := func(startQ, slewQ, v0Q, vtQ uint16, rising bool) bool {
		start := float64(startQ) / 1000
		slew := 0.01 + float64(slewQ)/1000
		v0 := vdd * float64(v0Q) / 65535
		vt := vdd * float64(vtQ) / 65535
		tr := Transition{Start: start, Slew: slew, V0: v0, Rising: rising, VDD: vdd, End: math.Inf(1)}
		tc, ok := tr.Crossing(vt)
		if !ok {
			return true
		}
		if tc < start {
			return false
		}
		return math.Abs(tr.V(tc)-vt) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: V(t) is always within the rails and monotonic in the ramp
// direction.
func TestVoltageBoundsProperty(t *testing.T) {
	f := func(slewQ, v0Q uint16, rising bool, samples uint8) bool {
		slew := 0.01 + float64(slewQ)/1000
		v0 := vdd * float64(v0Q) / 65535
		tr := Transition{Start: 0, Slew: slew, V0: v0, Rising: rising, VDD: vdd, End: math.Inf(1)}
		prev := tr.V(0)
		n := int(samples)%50 + 2
		for i := 1; i <= n; i++ {
			v := tr.V(float64(i) * slew / 10)
			if v < -1e-12 || v > vdd+1e-12 {
				return false
			}
			if rising && v < prev-1e-12 {
				return false
			}
			if !rising && v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
