package wave

import (
	"fmt"
	"math"
	"sort"
)

// Waveform is the full piecewise-linear history of one signal: an initial
// level followed by a time-ordered sequence of ramp transitions, each
// truncating its predecessor. Waveforms are append-only: the simulator never
// retracts an emitted transition, it only narrows pulses by truncation,
// which keeps the engine causal.
type Waveform struct {
	// VDD is the supply rail voltage shared by all transitions.
	VDD float64
	// VInit is the signal voltage before the first transition.
	VInit float64

	ts  []Transition
	seq int
}

// NewWaveform returns a waveform resting at vinit (clamped to the rails)
// under the given supply voltage.
func NewWaveform(vdd, vinit float64) *Waveform {
	if vdd <= 0 {
		panic(fmt.Sprintf("wave: non-positive VDD %g", vdd))
	}
	return &Waveform{VDD: vdd, VInit: clamp(vinit, 0, vdd)}
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// Reset re-arms the waveform at a new initial level, discarding all recorded
// transitions while retaining the transition storage capacity. It is the
// reuse path of the simulation engine: a waveform reset between runs appends
// transitions without reallocating once it has grown to a run's high-water
// mark. Any Transitions slice previously obtained from the waveform aliases
// storage that Reset will overwrite; detach (Clone) results that must
// survive.
//
//halotis:noalloc
func (w *Waveform) Reset(vinit float64) {
	w.VInit = clamp(vinit, 0, w.VDD)
	w.ts = w.ts[:0]
	w.seq = 0
}

// Clone returns a deep copy of the waveform with independent transition
// storage, safe to hold across a Reset of the original.
func (w *Waveform) Clone() *Waveform {
	c := &Waveform{VDD: w.VDD, VInit: w.VInit, seq: w.seq}
	if len(w.ts) > 0 {
		c.ts = make([]Transition, len(w.ts))
		copy(c.ts, w.ts)
	}
	return c
}

// Len returns the number of transitions recorded.
func (w *Waveform) Len() int { return len(w.ts) }

// Last returns the most recent transition, or nil if the waveform has none.
func (w *Waveform) Last() *Transition {
	if len(w.ts) == 0 {
		return nil
	}
	return &w.ts[len(w.ts)-1]
}

// Transitions returns the recorded transitions. The returned slice aliases
// the waveform's storage and must not be modified.
func (w *Waveform) Transitions() []Transition { return w.ts }

// V returns the waveform voltage at time t.
func (w *Waveform) V(t float64) float64 {
	if len(w.ts) == 0 || t < w.ts[0].Start {
		return w.VInit
	}
	// Binary search for the last transition starting at or before t.
	i := sort.Search(len(w.ts), func(i int) bool { return w.ts[i].Start > t }) - 1
	return w.ts[i].V(t)
}

// Add appends a ramp beginning at time start with the given direction and
// full-swing slew. The starting voltage is taken from the waveform itself
// (the voltage the signal has reached at start), truncating any in-flight
// ramp. It returns the appended transition.
//
// Add panics if start precedes the start of the last transition: the engine
// must clamp output times to keep per-signal transition starts
// non-decreasing.
//
//halotis:noalloc
func (w *Waveform) Add(start, slew float64, rising bool) *Transition {
	if slew <= 0 {
		panic(fmt.Sprintf("wave: non-positive slew %g", slew))
	}
	v0 := w.VInit
	if last := w.Last(); last != nil {
		if start < last.Start {
			panic(fmt.Sprintf("wave: transition at %.6g precedes previous at %.6g", start, last.Start))
		}
		last.End = start
		v0 = last.V(start)
	} else if w.ts == nil {
		// First transition ever: reserve a batch up front so active nets
		// do not pay the doubling-growth allocations one by one.
		//halotis:alloc one-time warm-up reservation on a net's first-ever transition; the steady state reuses it
		w.ts = make([]Transition, 0, 16)
	}
	w.seq++
	w.ts = append(w.ts, Transition{
		Start:  start,
		Slew:   slew,
		V0:     v0,
		Rising: rising,
		VDD:    w.VDD,
		End:    math.Inf(1),
		Seq:    w.seq,
	})
	return w.Last()
}

// Crossing describes one threshold crossing of a waveform.
type Crossing struct {
	// Time of the crossing in ns.
	Time float64
	// Rising is true for an upward crossing.
	Rising bool
	// Seq identifies the transition that produced the crossing.
	Seq int
}

// Crossings scans the whole waveform and returns every time it crosses the
// threshold vt, in time order. Unlike Transition.Crossing, this accounts for
// truncation, so it reports exactly the crossings a receiver with threshold
// vt actually observes. Used for analysis and waveform comparison.
func (w *Waveform) Crossings(vt float64) []Crossing {
	var out []Crossing
	for i := range w.ts {
		tr := &w.ts[i]
		if t, ok := tr.CrossingTruncated(vt); ok {
			out = append(out, Crossing{Time: t, Rising: tr.Rising, Seq: tr.Seq})
		}
	}
	return out
}

// LogicAt returns the boolean value of the waveform at time t for a receiver
// with threshold vt, resolving the start state from VInit. A waveform
// sitting exactly at vt reports its previous state (hysteresis-free
// waveforms never rest at vt in practice).
func (w *Waveform) LogicAt(t float64, vt float64) bool {
	state := w.VInit > vt
	for _, c := range w.Crossings(vt) {
		if c.Time > t {
			break
		}
		state = c.Rising
	}
	return state
}

// FinalV returns the voltage the waveform settles at after its last
// transition completes.
func (w *Waveform) FinalV() float64 {
	if last := w.Last(); last != nil {
		return last.VEnd()
	}
	return w.VInit
}

// Pulse describes a contiguous excursion of the waveform above (or below) a
// threshold.
type Pulse struct {
	// Start and End are the crossing times delimiting the pulse.
	Start, End float64
	// High is true when the pulse is an excursion above the threshold.
	High bool
}

// Width returns the pulse duration.
func (p Pulse) Width() float64 { return p.End - p.Start }

// Pulses pairs consecutive opposite crossings of vt into pulses. An
// unterminated final excursion is not reported.
func (w *Waveform) Pulses(vt float64) []Pulse {
	cs := w.Crossings(vt)
	var out []Pulse
	for i := 0; i+1 < len(cs); i++ {
		if cs[i].Rising != cs[i+1].Rising {
			out = append(out, Pulse{Start: cs[i].Time, End: cs[i+1].Time, High: cs[i].Rising})
		}
	}
	return out
}

// SwitchingEnergyNorm returns the normalized switching activity of the
// waveform: the sum over transitions of (achieved swing / VDD)^2. A full
// rail-to-rail transition contributes 1; degraded runt pulses contribute
// quadratically less, which is how the degradation model reduces estimated
// glitch power.
func (w *Waveform) SwitchingEnergyNorm() float64 {
	var e float64
	for i := range w.ts {
		s := w.ts[i].Swing() / w.VDD
		e += s * s
	}
	return e
}

// FullSwingCount returns how many transitions reached their target rail.
func (w *Waveform) FullSwingCount() int {
	n := 0
	for i := range w.ts {
		if w.ts[i].FullSwing() {
			n++
		}
	}
	return n
}

// Sample evaluates the waveform at n+1 uniform points spanning [t0, t1],
// returning the times and voltages. Used by the VCD/ASCII renderers and by
// logic-vs-analog comparison.
func (w *Waveform) Sample(t0, t1 float64, n int) (times, volts []float64) {
	if n < 1 || t1 < t0 {
		return nil, nil
	}
	times = make([]float64, n+1)
	volts = make([]float64, n+1)
	dt := (t1 - t0) / float64(n)
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*dt
		times[i] = t
		volts[i] = w.V(t)
	}
	return times, volts
}

// Validate checks the structural invariants of the waveform: transitions in
// non-decreasing start order, each truncated exactly at its successor's
// start, voltages within the rails.
func (w *Waveform) Validate() error {
	for i := range w.ts {
		tr := &w.ts[i]
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("transition %d: %w", i, err)
		}
		if tr.VDD != w.VDD {
			return fmt.Errorf("transition %d: VDD %.3g differs from waveform VDD %.3g", i, tr.VDD, w.VDD)
		}
		if i+1 < len(w.ts) {
			next := &w.ts[i+1]
			if next.Start < tr.Start {
				return fmt.Errorf("transition %d starts at %.4g before predecessor %.4g", i+1, next.Start, tr.Start)
			}
			if tr.End != next.Start {
				return fmt.Errorf("transition %d end %.4g != successor start %.4g", i, tr.End, next.Start)
			}
			if math.Abs(next.V0-tr.V(next.Start)) > 1e-9 {
				return fmt.Errorf("transition %d V0 %.4g discontinuous with predecessor voltage %.4g", i+1, next.V0, tr.V(next.Start))
			}
		} else if !math.IsInf(tr.End, 1) {
			return fmt.Errorf("last transition has finite end %.4g", tr.End)
		}
	}
	return nil
}
