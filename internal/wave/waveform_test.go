package wave

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewWaveformClampsInit(t *testing.T) {
	w := NewWaveform(vdd, 9)
	if w.VInit != vdd {
		t.Errorf("VInit = %g, want clamped to %g", w.VInit, vdd)
	}
	w2 := NewWaveform(vdd, -3)
	if w2.VInit != 0 {
		t.Errorf("VInit = %g, want clamped to 0", w2.VInit)
	}
}

func TestNewWaveformPanicsOnBadVDD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for VDD <= 0")
		}
	}()
	NewWaveform(0, 0)
}

func TestWaveformAddAndVoltage(t *testing.T) {
	w := NewWaveform(vdd, 0)
	w.Add(1, 1, true)  // full rise 1..2 ns
	w.Add(5, 1, false) // full fall 5..6 ns
	cases := []struct{ t, want float64 }{
		{0, 0},
		{1.5, vdd / 2},
		{3, vdd},
		{5.5, vdd / 2},
		{8, 0},
	}
	for _, c := range cases {
		if got := w.V(c.t); !almostEq(got, c.want) {
			t.Errorf("V(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if err := w.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestWaveformTruncationCreatesRunt(t *testing.T) {
	w := NewWaveform(vdd, 0)
	w.Add(0, 5, true)  // slow rise, 1 V/ns
	w.Add(2, 5, false) // truncates at 2 V — runt pulse
	if got := w.V(2); !almostEq(got, 2) {
		t.Errorf("peak = %g, want 2", got)
	}
	if got := w.V(10); !almostEq(got, 0) {
		t.Errorf("settled = %g, want 0", got)
	}
	first := w.Transitions()[0]
	if first.FullSwing() {
		t.Error("truncated ramp reported full swing")
	}
	// The runt never crosses 2.5 V: a receiver with VT=2.5 sees nothing.
	if cs := w.Crossings(2.5); len(cs) != 0 {
		t.Errorf("runt pulse crossed 2.5 V: %v", cs)
	}
	// But a receiver with VT=1.0 sees a full pulse.
	cs := w.Crossings(1.0)
	if len(cs) != 2 || !cs[0].Rising || cs[1].Rising {
		t.Fatalf("VT=1.0 crossings = %v, want rise+fall", cs)
	}
	if !almostEq(cs[0].Time, 1) || !almostEq(cs[1].Time, 3) {
		t.Errorf("crossing times = %g,%g want 1,3", cs[0].Time, cs[1].Time)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestWaveformAddPanicsOnTimeTravel(t *testing.T) {
	w := NewWaveform(vdd, 0)
	w.Add(5, 1, true)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-order transition")
		}
	}()
	w.Add(4, 1, false)
}

func TestWaveformAddPanicsOnBadSlew(t *testing.T) {
	w := NewWaveform(vdd, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive slew")
		}
	}()
	w.Add(0, 0, true)
}

func TestWaveformZeroWidthPulse(t *testing.T) {
	// Two transitions at the same instant: the first contributes nothing.
	w := NewWaveform(vdd, 0)
	w.Add(3, 1, true)
	w.Add(3, 1, false)
	if got := w.V(10); !almostEq(got, 0) {
		t.Errorf("settled = %g, want 0", got)
	}
	if cs := w.Crossings(2.5); len(cs) != 0 {
		t.Errorf("zero-width pulse produced crossings: %v", cs)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLogicAt(t *testing.T) {
	w := NewWaveform(vdd, 0)
	w.Add(1, 1, true)
	w.Add(5, 1, false)
	vt := vdd / 2
	cases := []struct {
		t    float64
		want bool
	}{
		{0, false},
		{2, true},
		{5.6, false},
	}
	for _, c := range cases {
		if got := w.LogicAt(c.t, vt); got != c.want {
			t.Errorf("LogicAt(%g) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPulses(t *testing.T) {
	w := NewWaveform(vdd, 0)
	w.Add(0, 1, true)
	w.Add(3, 1, false)
	w.Add(6, 1, true)
	w.Add(10, 1, false)
	ps := w.Pulses(vdd / 2)
	if len(ps) != 3 { // high 0..3ish, low 3..6ish, high 6..10ish
		t.Fatalf("got %d pulses, want 3: %v", len(ps), ps)
	}
	if !ps[0].High || ps[1].High || !ps[2].High {
		t.Errorf("pulse polarity wrong: %v", ps)
	}
	if w1 := ps[0].Width(); !almostEq(w1, 3) {
		t.Errorf("first pulse width = %g, want 3", w1)
	}
}

func TestSwitchingEnergyNorm(t *testing.T) {
	w := NewWaveform(vdd, 0)
	w.Add(0, 1, true)   // full swing: contributes 1
	w.Add(5, 1, false)  // full swing: contributes 1
	w.Add(10, 5, true)  // truncated at 12: 2 V swing -> (0.4)^2
	w.Add(12, 5, false) // falls back 2 V -> (0.4)^2
	got := w.SwitchingEnergyNorm()
	want := 1 + 1 + 0.16 + 0.16
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %g, want %g", got, want)
	}
	if n := w.FullSwingCount(); n != 3 { // last fall from 2 V reaches 0
		t.Errorf("FullSwingCount = %d, want 3", n)
	}
}

func TestFinalV(t *testing.T) {
	w := NewWaveform(vdd, vdd)
	if got := w.FinalV(); got != vdd {
		t.Errorf("empty FinalV = %g, want %g", got, vdd)
	}
	w.Add(0, 1, false)
	if got := w.FinalV(); !almostEq(got, 0) {
		t.Errorf("FinalV = %g, want 0", got)
	}
}

func TestSample(t *testing.T) {
	w := NewWaveform(vdd, 0)
	w.Add(0, 2, true)
	times, volts := w.Sample(0, 2, 4)
	if len(times) != 5 || len(volts) != 5 {
		t.Fatalf("sample sizes = %d,%d want 5,5", len(times), len(volts))
	}
	if !almostEq(volts[2], vdd/2) {
		t.Errorf("midpoint sample = %g, want %g", volts[2], vdd/2)
	}
	if ts, vs := w.Sample(2, 0, 4); ts != nil || vs != nil {
		t.Error("inverted interval should return nil")
	}
	if ts, vs := w.Sample(0, 1, 0); ts != nil || vs != nil {
		t.Error("n<1 should return nil")
	}
}

// buildRandomWaveform appends n random transitions with non-decreasing start
// times and returns the waveform.
func buildRandomWaveform(rng *rand.Rand, n int) *Waveform {
	w := NewWaveform(vdd, float64(rng.Intn(2))*vdd)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.Float64() * 2
		w.Add(t, 0.05+rng.Float64()*3, rng.Intn(2) == 0)
	}
	return w
}

// Property: any waveform built through Add satisfies Validate and stays
// within the rails everywhere.
func TestWaveformInvariantsProperty(t *testing.T) {
	f := func(seed int64, nQ uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := buildRandomWaveform(rng, int(nQ)%40+1)
		if err := w.Validate(); err != nil {
			t.Logf("validate failed: %v", err)
			return false
		}
		for i := 0; i <= 200; i++ {
			v := w.V(float64(i) * 0.5)
			if v < -1e-9 || v > vdd+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: crossings alternate direction for any threshold strictly between
// the rails — a waveform cannot cross the same threshold twice in the same
// direction without crossing back in between.
func TestCrossingsAlternateProperty(t *testing.T) {
	f := func(seed int64, nQ uint8, vtQ uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		w := buildRandomWaveform(rng, int(nQ)%40+1)
		vt := 0.1 + (vdd-0.2)*float64(vtQ)/65535
		cs := w.Crossings(vt)
		for i := 1; i < len(cs); i++ {
			if cs[i].Rising == cs[i-1].Rising {
				return false
			}
			if cs[i].Time < cs[i-1].Time {
				return false
			}
		}
		// First crossing direction must leave the initial side.
		if len(cs) > 0 {
			startHigh := w.VInit > vt
			if cs[0].Rising == startHigh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: LogicAt after all transitions settles to FinalV side.
func TestLogicSettlesProperty(t *testing.T) {
	f := func(seed int64, nQ uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := buildRandomWaveform(rng, int(nQ)%30+1)
		vt := vdd / 2
		final := w.FinalV()
		if math.Abs(final-vt) < 0.25 {
			return true // too close to threshold to assert
		}
		settled := w.Last().settleTime() + 1
		return w.LogicAt(settled, vt) == (final > vt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestResetRetainsCapacityAndClonesDetach(t *testing.T) {
	w := NewWaveform(5, 0)
	for i := 0; i < 8; i++ {
		w.Add(float64(i), 0.5, i%2 == 0)
	}
	snap := w.Clone()
	if snap.Len() != 8 {
		t.Fatalf("clone Len = %d, want 8", snap.Len())
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}

	capBefore := cap(w.ts)
	w.Reset(5)
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	if w.VInit != 5 {
		t.Errorf("VInit after Reset = %g, want 5", w.VInit)
	}
	if cap(w.ts) != capBefore {
		t.Errorf("capacity after Reset = %d, want %d", cap(w.ts), capBefore)
	}
	// Refill the original: the clone must be unaffected.
	for i := 0; i < 4; i++ {
		w.Add(float64(i)+10, 0.25, i%2 == 1)
	}
	if snap.Len() != 8 || snap.ts[0].Start != 0 || snap.ts[0].Slew != 0.5 {
		t.Error("clone mutated by Reset+Add on the original")
	}
	// Seq numbering restarts so reruns are bit-identical.
	if w.ts[0].Seq != 1 {
		t.Errorf("first Seq after Reset = %d, want 1", w.ts[0].Seq)
	}
	// Reset clamps the new initial level to the rails.
	w.Reset(9)
	if w.VInit != 5 {
		t.Errorf("VInit after out-of-rail Reset = %g, want clamped 5", w.VInit)
	}
}

func TestResetSteadyStateAllocs(t *testing.T) {
	w := NewWaveform(5, 0)
	fill := func() {
		w.Reset(0)
		for i := 0; i < 32; i++ {
			w.Add(float64(i), 0.5, i%2 == 0)
		}
	}
	fill()
	//halotis:pins Reset Add
	if allocs := testing.AllocsPerRun(50, fill); allocs != 0 {
		t.Errorf("steady-state Reset+Add allocs = %g, want 0", allocs)
	}
}
