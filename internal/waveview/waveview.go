// Package waveview renders logic waveforms as ASCII rows, one signal per
// line, in the style of the paper's Fig. 6 and Fig. 7 (s7..s0 over a 25 ns
// window). It is the terminal-friendly figure regeneration used by
// cmd/halobench.
package waveview

import (
	"fmt"
	"strings"
)

// Row is one signal to render: a name plus a sampled logic function.
type Row struct {
	Name string
	// LogicAt returns the signal's boolean level at time t.
	LogicAt func(t float64) bool
}

// View renders rows over a time window.
type View struct {
	// T0, T1 delimit the window in ns.
	T0, T1 float64
	// Width is the number of character columns; default 100.
	Width int
	Rows  []Row
}

// Add appends a row.
func (v *View) Add(name string, logicAt func(t float64) bool) {
	v.Rows = append(v.Rows, Row{Name: name, LogicAt: logicAt})
}

// glyphs for low/high levels and edges.
const (
	glyphLow  = '_'
	glyphHigh = '#'
)

// Render draws all rows plus a time axis.
func (v *View) Render() string {
	width := v.Width
	if width <= 0 {
		width = 100
	}
	if v.T1 <= v.T0 || len(v.Rows) == 0 {
		return ""
	}
	nameW := 0
	for _, r := range v.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	var b strings.Builder
	dt := (v.T1 - v.T0) / float64(width)
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%-*s |", nameW, r.Name)
		for c := 0; c < width; c++ {
			t := v.T0 + (float64(c)+0.5)*dt
			if r.LogicAt(t) {
				b.WriteRune(glyphHigh)
			} else {
				b.WriteRune(glyphLow)
			}
		}
		b.WriteString("|\n")
	}
	// Time axis with ticks every ~5 ns.
	fmt.Fprintf(&b, "%-*s +", nameW, "")
	tick := 5.0
	next := v.T0
	for c := 0; c < width; c++ {
		t := v.T0 + float64(c)*dt
		if t+dt > next {
			b.WriteByte('+')
			next += tick
		} else {
			b.WriteByte('-')
		}
	}
	b.WriteString("+\n")
	fmt.Fprintf(&b, "%-*s  %-8s", nameW, "", fmt.Sprintf("%gns", v.T0))
	b.WriteString(strings.Repeat(" ", max(0, width-16)))
	fmt.Fprintf(&b, "%8s\n", fmt.Sprintf("%gns", v.T1))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
