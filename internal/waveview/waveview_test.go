package waveview

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	v := View{T0: 0, T1: 10, Width: 20}
	v.Add("s0", func(t float64) bool { return t >= 5 })
	v.Add("s1", func(t float64) bool { return true })
	out := v.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // two rows + axis + labels
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "s0 |") {
		t.Errorf("row header wrong: %q", lines[0])
	}
	// First half low, second half high.
	row := lines[0][4 : 4+20]
	if row[0] != '_' || row[19] != '#' {
		t.Errorf("row content wrong: %q", row)
	}
	if !strings.Contains(lines[1], "####################") {
		t.Errorf("constant-high row wrong: %q", lines[1])
	}
	if !strings.Contains(out, "0ns") || !strings.Contains(out, "10ns") {
		t.Error("axis labels missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	v := View{T0: 0, T1: 10}
	if out := v.Render(); out != "" {
		t.Errorf("empty view rendered %q", out)
	}
	v2 := View{T0: 5, T1: 5}
	v2.Add("x", func(float64) bool { return false })
	if out := v2.Render(); out != "" {
		t.Errorf("zero-width window rendered %q", out)
	}
}

func TestNameAlignment(t *testing.T) {
	v := View{T0: 0, T1: 1, Width: 10}
	v.Add("s", func(float64) bool { return false })
	v.Add("longname", func(float64) bool { return false })
	out := v.Render()
	lines := strings.Split(out, "\n")
	if strings.Index(lines[0], "|") != strings.Index(lines[1], "|") {
		t.Error("rows not aligned")
	}
}

func TestDefaultWidth(t *testing.T) {
	v := View{T0: 0, T1: 25}
	v.Add("s", func(float64) bool { return false })
	out := v.Render()
	line := strings.Split(out, "\n")[0]
	inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
	if len(inner) != 100 {
		t.Errorf("default width = %d, want 100", len(inner))
	}
}
