package halotis

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"halotis/api"
	"halotis/internal/circ"
	"halotis/internal/sim"
)

// LocalBackend runs sessions in-process: each opened circuit gets a warm
// engine pool over its compiled IR (shared with every other consumer of
// the circuit via circ.Compile's memoization), so steady-state runs hit
// the kernel's zero-allocation reuse path. It is the Session-API face of
// the same machinery Simulate/NewEngine use.
type LocalBackend struct {
	poolSize      int
	maxConcurrent int
	sem           chan struct{}
}

// LocalOption configures NewLocal.
type LocalOption func(*LocalBackend)

// WithLocalPoolSize bounds the free engines retained per (session,
// options) pool (default: GOMAXPROCS).
func WithLocalPoolSize(n int) LocalOption { return func(b *LocalBackend) { b.poolSize = n } }

// WithLocalMaxConcurrent bounds the concurrently executing runs across all
// of the backend's sessions; admission beyond it fails fast with
// ErrOverloaded, mirroring the daemon's bounded queue. 0 (the default)
// means unbounded.
func WithLocalMaxConcurrent(n int) LocalOption { return func(b *LocalBackend) { b.maxConcurrent = n } }

// NewLocal builds the in-process backend.
func NewLocal(opts ...LocalOption) *LocalBackend {
	b := &LocalBackend{poolSize: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(b)
	}
	if b.poolSize <= 0 {
		b.poolSize = runtime.GOMAXPROCS(0)
	}
	if b.maxConcurrent > 0 {
		b.sem = make(chan struct{}, b.maxConcurrent)
	}
	return b
}

// Open compiles the circuit (memoized on the circuit itself) and returns a
// session whose engine pool serves it.
func (b *LocalBackend) Open(ctx context.Context, ckt *Circuit) (Session, error) {
	if ckt == nil {
		return nil, api.InvalidRequestf("nil circuit")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, api.Canceled(err)
		}
	}
	ir := circ.Compile(ckt)
	return &localSession{
		b:    b,
		pool: sim.NewEnginePool(ir, b.poolSize, nil),
		info: api.InfoOf(ir),
	}, nil
}

// localSession is one opened circuit on a LocalBackend. Safe for
// concurrent use: the pool hands each run its own engine.
type localSession struct {
	b      *LocalBackend
	pool   *sim.EnginePool
	info   api.CircuitInfo
	closed atomic.Bool
}

func (s *localSession) Circuit() CircuitInfo { return s.info }

// Close marks the session released; subsequent runs fail with
// ErrCircuitNotFound. The compiled IR itself stays memoized on the
// circuit (it is shared), only this session's warm engines become
// garbage.
func (s *localSession) Close() error {
	s.closed.Store(true)
	return nil
}

// acquireSlot enforces the backend's concurrency bound.
func (s *localSession) acquireSlot() (release func(), err error) {
	if s.b.sem == nil {
		return func() {}, nil
	}
	select {
	case s.b.sem <- struct{}{}:
		return func() { <-s.b.sem }, nil
	default:
		return nil, &api.OverloadedError{Cause: fmt.Errorf("local backend at max concurrency %d", s.b.maxConcurrent)}
	}
}

func (s *localSession) Run(ctx context.Context, req Request) (*Report, error) {
	if s.closed.Load() {
		return nil, api.NotFoundf("session closed: circuit %s released", s.info.ID)
	}
	release, err := s.acquireSlot()
	if err != nil {
		return nil, err
	}
	defer release()
	return s.runOne(ctx, &req)
}

// timeoutDuration converts a request's timeout_ms, saturating instead of
// overflowing time.Duration (the same rule the daemon applies).
func timeoutDuration(ms float64) time.Duration {
	if ms >= float64(math.MaxInt64)/float64(time.Millisecond) {
		return math.MaxInt64
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// runOne executes one prepared request on a pooled engine. The report is
// built before the engine returns to the pool (results alias engine
// storage until then).
func (s *localSession) runOne(ctx context.Context, req *Request) (*Report, error) {
	ir := s.pool.IR()
	st, err := req.Prepare(ir)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := func() {}
	if req.TimeoutMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeoutDuration(req.TimeoutMs))
	}
	defer cancel()

	key := req.Options().PoolKey()
	eng := s.pool.Acquire(key)
	// Profiling is per-run state, not pool identity: toggle it on the
	// pooled engine for this request and clear it before the engine goes
	// back, so a later profile-less request reuses the engine untouched.
	if req.Profile {
		eng.SetProfiling(true)
	}
	res, err := eng.RunContext(ctx, st, req.TEnd)
	if err != nil {
		eng.SetProfiling(false)
		s.pool.Release(key, eng)
		return nil, api.MapRunError(err)
	}
	rep := api.BuildReport(ir, s.info.ID, res, req)
	eng.SetProfiling(false)
	s.pool.Release(key, eng)
	return rep, nil
}

// RunBatch fans the requests across min(GOMAXPROCS, len(reqs)) workers,
// each acquiring engines from the session's pool, and returns reports in
// request order — bit-identical to running each request alone. The whole
// batch occupies one admission slot of the backend's concurrency bound,
// mirroring the daemon's batch admission. The first failure cancels the
// remaining runs; the root-cause error (not a sibling run's secondary
// cancellation) is returned, wrapped with its request index.
func (s *localSession) RunBatch(ctx context.Context, reqs []Request) ([]*Report, error) {
	if s.closed.Load() {
		return nil, api.NotFoundf("session closed: circuit %s released", s.info.ID)
	}
	release, err := s.acquireSlot()
	if err != nil {
		return nil, err
	}
	defer release()
	if ctx == nil {
		ctx = context.Background()
	}

	reports := make([]*Report, len(reqs))
	if len(reqs) == 0 {
		return reports, nil
	}
	errs := make([]error, len(reqs))
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := fanCtx.Err(); err != nil {
					errs[i] = api.Canceled(err)
					continue
				}
				rep, err := s.runOne(fanCtx, &reqs[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				reports[i] = rep
			}
		}()
	}
	wg.Wait()

	if i, err := api.FirstFailure(errs); err != nil {
		return nil, fmt.Errorf("requests[%d]: %w", i, err)
	}
	return reports, nil
}
