package halotis

import (
	"context"
	"fmt"
	"strings"

	"halotis/api"
	"halotis/client"
	"halotis/internal/netfmt"
)

// RemoteBackend runs sessions against a halotisd daemon: Open serializes
// the circuit to the native netlist format and uploads it (idempotent —
// circuits are content-addressed, so re-opening a circuit any replica has
// seen costs one cache hit), and each Run is one POST /v1/simulate. The
// wire types are the same halotis/api structs the Local backend consumes,
// so a Request produces a bit-identical Report over either backend.
type RemoteBackend struct {
	c *client.Client
}

// NewRemote builds a backend over the daemon at base
// (e.g. "http://127.0.0.1:8080").
func NewRemote(base string, opts ...client.Option) *RemoteBackend {
	return &RemoteBackend{c: client.New(base, opts...)}
}

// NewRemoteFromClient wraps an existing typed client.
func NewRemoteFromClient(c *client.Client) *RemoteBackend { return &RemoteBackend{c: c} }

// Client exposes the underlying typed client for service-level calls the
// Session API does not cover (listing circuits, health, metrics).
func (b *RemoteBackend) Client() *client.Client { return b.c }

// Open uploads the circuit and returns a session bound to its
// content-hash ID.
func (b *RemoteBackend) Open(ctx context.Context, ckt *Circuit) (Session, error) {
	if ckt == nil {
		return nil, api.InvalidRequestf("nil circuit")
	}
	var text strings.Builder
	if err := netfmt.WriteCircuit(&text, ckt); err != nil {
		return nil, fmt.Errorf("serialize circuit: %w", err)
	}
	up, err := b.c.UploadCircuit(ctx, api.UploadRequest{Name: ckt.Name, Format: "net", Netlist: text.String()})
	if err != nil {
		return nil, fmt.Errorf("upload circuit: %w", err)
	}
	return &remoteSession{c: b.c, info: up.CircuitInfo}, nil
}

// remoteSession is one uploaded circuit on one daemon. Safe for concurrent
// use (the client is).
type remoteSession struct {
	c    *client.Client
	info api.CircuitInfo
}

func (s *remoteSession) Circuit() CircuitInfo { return s.info }

// Close is a no-op: the daemon's circuit cache is content-addressed and
// shared across callers, so a session holds no per-caller server state.
func (s *remoteSession) Close() error { return nil }

func (s *remoteSession) Run(ctx context.Context, req Request) (*Report, error) {
	rep, err := s.c.Simulate(ctx, api.SimRequest{Circuit: s.info.ID, Request: req})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func (s *remoteSession) RunBatch(ctx context.Context, reqs []Request) ([]*Report, error) {
	resp, err := s.c.SimulateBatch(ctx, api.BatchRequest{Circuit: s.info.ID, Requests: reqs})
	if err != nil {
		return nil, err
	}
	out := make([]*Report, len(resp.Reports))
	for i := range resp.Reports {
		out[i] = &resp.Reports[i]
	}
	return out, nil
}
