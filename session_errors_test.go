package halotis

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"halotis/api"
	"halotis/internal/service"
)

// errTestServer stands up an in-process halotisd and returns the service
// internals (so cases can evict circuits or drain the queue) plus a
// RemoteBackend over it.
func errTestServer(t *testing.T, cfg service.Config) (*service.Server, *RemoteBackend) {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, NewRemote(ts.URL)
}

func errTestCircuit(t *testing.T) *Circuit {
	t.Helper()
	ckt, err := C17(DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

func validC17Request(ckt *Circuit) Request {
	st := Stimulus{}
	for i, in := range ckt.Inputs {
		st[in.Name] = InputWave{Edges: []InputEdge{{Time: 2 + float64(i), Rising: true, Slew: 0.2}}}
	}
	return Request{TEnd: 30, Stimulus: WireStimulus(st)}
}

// TestSessionErrorTaxonomy is the table-driven acceptance test for typed
// errors: for each failure class, the Local and the Remote backend return
// an error matchable with errors.Is against the same sentinel — callers
// branch identically whichever backend is behind the interface.
func TestSessionErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	ckt := errTestCircuit(t)

	sentinels := []error{ErrCircuitNotFound, ErrOverloaded, ErrCanceled, ErrInvalidRequest}

	cases := []struct {
		name string
		want error
		run  func(t *testing.T) error
	}{
		{
			name: "local/not-found-after-close",
			want: ErrCircuitNotFound,
			run: func(t *testing.T) error {
				s, err := NewLocal().Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				s.Close()
				_, err = s.Run(ctx, validC17Request(ckt))
				return err
			},
		},
		{
			name: "remote/not-found-after-evict",
			want: ErrCircuitNotFound,
			run: func(t *testing.T) error {
				_, be := errTestServer(t, service.Config{})
				s, err := be.Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				if err := be.Client().Evict(ctx, s.Circuit().ID); err != nil {
					t.Fatal(err)
				}
				_, err = s.Run(ctx, validC17Request(ckt))
				return err
			},
		},
		{
			name: "local/overloaded",
			want: ErrOverloaded,
			run: func(t *testing.T) error {
				be := NewLocal(WithLocalMaxConcurrent(1))
				s, err := be.Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				// Occupy the backend's single admission slot, as a
				// long-running concurrent Run would.
				be.sem <- struct{}{}
				defer func() { <-be.sem }()
				_, err = s.Run(ctx, validC17Request(ckt))
				return err
			},
		},
		{
			name: "remote/overloaded-with-retry-after",
			want: ErrOverloaded,
			run: func(t *testing.T) error {
				svc, be := errTestServer(t, service.Config{})
				s, err := be.Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				// A draining daemon refuses admission: 503 + Retry-After.
				svc.Close()
				_, err = s.Run(ctx, validC17Request(ckt))
				if ra, ok := api.RetryAfter(err); !ok || ra < time.Second {
					t.Errorf("RetryAfter(err) = %v, %v; want >= 1s hint", ra, ok)
				}
				return err
			},
		},
		{
			name: "local/canceled-context",
			want: ErrCanceled,
			run: func(t *testing.T) error {
				s, err := NewLocal().Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				canceled, cancel := context.WithCancel(ctx)
				cancel()
				_, err = s.Run(canceled, validC17Request(ckt))
				if !errors.Is(err, context.Canceled) {
					t.Errorf("err = %v, want to unwrap to context.Canceled too", err)
				}
				return err
			},
		},
		{
			name: "remote/canceled-context",
			want: ErrCanceled,
			run: func(t *testing.T) error {
				_, be := errTestServer(t, service.Config{})
				s, err := be.Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				canceled, cancel := context.WithCancel(ctx)
				cancel()
				_, err = s.Run(canceled, validC17Request(ckt))
				return err
			},
		},
		{
			name: "remote/deadline-via-server-cap",
			want: ErrCanceled,
			run: func(t *testing.T) error {
				_, be := errTestServer(t, service.Config{MaxTimeout: time.Nanosecond})
				s, err := be.Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				_, err = s.Run(ctx, validC17Request(ckt))
				return err
			},
		},
		{
			name: "local/malformed-stimulus",
			want: ErrInvalidRequest,
			run: func(t *testing.T) error {
				s, err := NewLocal().Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				req := validC17Request(ckt)
				req.Stimulus["1"] = api.InputWave{Edges: []api.Edge{{T: -3, Rising: true, Slew: 0.2}}}
				_, err = s.Run(ctx, req)
				return err
			},
		},
		{
			name: "remote/malformed-stimulus",
			want: ErrInvalidRequest,
			run: func(t *testing.T) error {
				_, be := errTestServer(t, service.Config{})
				s, err := be.Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				req := validC17Request(ckt)
				req.Stimulus["1"] = api.InputWave{Edges: []api.Edge{{T: -3, Rising: true, Slew: 0.2}}}
				_, err = s.Run(ctx, req)
				return err
			},
		},
		{
			name: "local/unknown-input",
			want: ErrInvalidRequest,
			run: func(t *testing.T) error {
				s, err := NewLocal().Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				req := validC17Request(ckt)
				req.Stimulus["no_such_input"] = api.InputWave{Edges: []api.Edge{{T: 1, Rising: true, Slew: 0.2}}}
				_, err = s.Run(ctx, req)
				return err
			},
		},
		{
			name: "remote/unknown-input",
			want: ErrInvalidRequest,
			run: func(t *testing.T) error {
				_, be := errTestServer(t, service.Config{})
				s, err := be.Open(ctx, ckt)
				if err != nil {
					t.Fatal(err)
				}
				req := validC17Request(ckt)
				req.Stimulus["no_such_input"] = api.InputWave{Edges: []api.Edge{{T: 1, Rising: true, Slew: 0.2}}}
				_, err = s.Run(ctx, req)
				return err
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatal("run unexpectedly succeeded")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want errors.Is(%v)", err, tc.want)
			}
			// The classes are mutually exclusive: matching a second
			// sentinel would make callers' branching ambiguous.
			for _, other := range sentinels {
				if other != tc.want && errors.Is(err, other) {
					t.Errorf("err = %v also matches %v", err, other)
				}
			}
		})
	}
}

// TestLocalBatchReportsRootCause mirrors the service-side test on the
// Local backend: a batch whose failing request cancels kernel-heavy
// siblings reports the typed root cause, not a secondary cancellation.
func TestLocalBatchReportsRootCause(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(4, runtime.NumCPU())))
	ctx := context.Background()
	lib := DefaultLibrary()
	ckt, err := Multiplier4x4(lib)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLocal().Open(ctx, ckt)
	if err != nil {
		t.Fatal(err)
	}

	var reqs []Request
	for i := 0; i < 3; i++ { // kernel-heavy valid jobs
		pairs := make([]MultiplierPair, 250)
		for v := range pairs {
			pairs[v] = MultiplierPair{A: uint64((v*7 + i) % 16), B: uint64((v*13 + i) % 16)}
		}
		st, err := MultiplierSequence(pairs, 4, 4, 5.0, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, Request{TEnd: 1300, Stimulus: WireStimulus(st)})
	}
	reqs = append(reqs, Request{TEnd: 30, Waveforms: []string{"no_such_net"}})

	_, err = s.RunBatch(ctx, reqs)
	if err == nil {
		t.Fatal("batch with an invalid request succeeded")
	}
	if !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("err = %v, want the root-cause ErrInvalidRequest (not a secondary cancellation)", err)
	}
	if !strings.Contains(err.Error(), "requests[3]") {
		t.Errorf("error %q does not name the failing request index", err)
	}
}

// TestLocalBatchSharesOneAdmissionSlot pins the batch admission rule: a
// RunBatch occupies one concurrency slot however many requests it carries,
// mirroring the daemon's batch admission.
func TestLocalBatchSharesOneAdmissionSlot(t *testing.T) {
	ctx := context.Background()
	ckt := errTestCircuit(t)
	be := NewLocal(WithLocalMaxConcurrent(1))
	s, err := be.Open(ctx, ckt)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{validC17Request(ckt), validC17Request(ckt), validC17Request(ckt)}
	reports, err := s.RunBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch under MaxConcurrent(1): %v", err)
	}
	if len(reports) != len(reqs) {
		t.Fatalf("got %d reports, want %d", len(reports), len(reqs))
	}
}
