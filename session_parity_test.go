package halotis_test

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"

	"halotis"
	"halotis/internal/service"
)

// newRemoteBackend stands up an in-process halotisd over httptest and
// returns a RemoteBackend speaking to it.
func newRemoteBackend(t *testing.T, cfg service.Config) *halotis.RemoteBackend {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return halotis.NewRemote(ts.URL)
}

// parityCircuits are the acceptance workloads: the ISCAS85 c17 benchmark
// and the paper's Fig. 5 4x4 array multiplier.
func parityCircuits(t *testing.T) map[string]*halotis.Circuit {
	t.Helper()
	lib := halotis.DefaultLibrary()
	c17, err := halotis.C17(lib)
	if err != nil {
		t.Fatal(err)
	}
	mult, err := halotis.Multiplier4x4(lib)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*halotis.Circuit{"c17": c17, "mult4x4": mult}
}

// parityStimulus drives the circuit: the multiplier gets the paper's
// sequence 1, anything else a staggered toggle on every input.
func parityStimulus(t *testing.T, name string, ckt *halotis.Circuit) halotis.Stimulus {
	t.Helper()
	if name == "mult4x4" {
		st, err := halotis.MultiplierSequence(halotis.PaperSequence1(), 4, 4, halotis.PaperPeriod, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := halotis.Stimulus{}
	for i, in := range ckt.Inputs {
		st[in.Name] = halotis.InputWave{Edges: []halotis.InputEdge{
			{Time: 2 + 0.7*float64(i), Rising: true, Slew: 0.2},
			{Time: 12 + 0.7*float64(i), Rising: false, Slew: 0.2},
		}}
	}
	return st
}

// closeEnough compares whole-circuit float sums to one part in 1e12.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*scale
}

// reportsEqual compares every deterministic field of two reports
// (ElapsedNs and Cached are machine/state-dependent by design).
func reportsEqual(t *testing.T, label string, a, b *halotis.Report) {
	t.Helper()
	if a.Circuit != b.Circuit {
		t.Errorf("%s: circuit IDs differ: %s vs %s", label, a.Circuit, b.Circuit)
	}
	if a.Model != b.Model || a.TEnd != b.TEnd {
		t.Errorf("%s: model/t_end differ: %s/%g vs %s/%g", label, a.Model, a.TEnd, b.Model, b.TEnd)
	}
	if a.Stats != b.Stats {
		t.Errorf("%s: stats differ:\n  local  %+v\n  remote %+v", label, a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Outputs, b.Outputs) {
		t.Errorf("%s: outputs differ: %v vs %v", label, a.Outputs, b.Outputs)
	}
	if !reflect.DeepEqual(a.Waveforms, b.Waveforms) {
		t.Errorf("%s: waveform crossings differ", label)
	}
	// Activity/power digests are whole-circuit float sums. The remote
	// backend re-parses the serialized netlist, which can enumerate nets in
	// a different order than the original builder did; the per-net values
	// are bit-identical (the waveform comparison above proves it) but the
	// association of the sum may differ in the last ulp. Compare within one
	// part in 1e12 rather than bit-for-bit.
	if (a.Activity == nil) != (b.Activity == nil) {
		t.Errorf("%s: activity presence differs", label)
	} else if a.Activity != nil {
		if a.Activity.Transitions != b.Activity.Transitions {
			t.Errorf("%s: activity transitions differ: %d vs %d", label, a.Activity.Transitions, b.Activity.Transitions)
		}
		if !closeEnough(a.Activity.EnergyNorm, b.Activity.EnergyNorm) {
			t.Errorf("%s: activity energy differs: %v vs %v", label, a.Activity.EnergyNorm, b.Activity.EnergyNorm)
		}
	}
	if (a.Power == nil) != (b.Power == nil) {
		t.Errorf("%s: power presence differs", label)
	} else if a.Power != nil {
		pairs := [][2]float64{
			{a.Power.TotalEnergyFJ, b.Power.TotalEnergyFJ},
			{a.Power.GlitchEnergyFJ, b.Power.GlitchEnergyFJ},
			{a.Power.AvgPowerMW, b.Power.AvgPowerMW},
			{a.Power.GlitchFraction, b.Power.GlitchFraction},
		}
		for _, p := range pairs {
			if !closeEnough(p[0], p[1]) {
				t.Errorf("%s: power differs: %+v vs %+v", label, a.Power, b.Power)
				break
			}
		}
	}
	if a.VCD != b.VCD {
		t.Errorf("%s: VCD payloads differ", label)
	}
}

// TestLocalRemoteParity is the Session API acceptance test: the same
// Request against the Local backend and against a live halotisd yields
// bit-identical stats and output-waveform crossings (and activity, power,
// VCD, sampled outputs) for c17 and the 4x4 multiplier, under both DDM and
// CDM.
func TestLocalRemoteParity(t *testing.T) {
	ctx := context.Background()
	local := halotis.NewLocal()
	remote := newRemoteBackend(t, service.Config{})

	for name, ckt := range parityCircuits(t) {
		ls, err := local.Open(ctx, ckt)
		if err != nil {
			t.Fatalf("%s: open local: %v", name, err)
		}
		rs, err := remote.Open(ctx, ckt)
		if err != nil {
			t.Fatalf("%s: open remote: %v", name, err)
		}
		if ls.Circuit().ID != rs.Circuit().ID {
			t.Errorf("%s: backends disagree on the content-hash ID: %s vs %s", name, ls.Circuit().ID, rs.Circuit().ID)
		}

		outputs := ls.Circuit().Outputs
		st := halotis.WireStimulus(parityStimulus(t, name, ckt))
		for _, model := range []string{"ddm", "cdm"} {
			req := halotis.Request{
				Model:     model,
				TEnd:      30,
				Stimulus:  st,
				Waveforms: outputs,
				Activity:  true,
				Power:     true,
				VCD:       true,
			}
			lrep, err := ls.Run(ctx, req)
			if err != nil {
				t.Fatalf("%s/%s: local run: %v", name, model, err)
			}
			rrep, err := rs.Run(ctx, req)
			if err != nil {
				t.Fatalf("%s/%s: remote run: %v", name, model, err)
			}
			if lrep.Stats.EventsProcessed == 0 {
				t.Fatalf("%s/%s: empty run, parity is vacuous", name, model)
			}
			reportsEqual(t, name+"/"+model, lrep, rrep)
		}
		ls.Close()
		rs.Close()
	}
}

// TestSessionRunBatchParity checks the batch path on both backends: the
// reports come back in request order and each is identical to its single
// Run, across backends.
func TestSessionRunBatchParity(t *testing.T) {
	ctx := context.Background()
	lib := halotis.DefaultLibrary()
	ckt, err := halotis.C17(lib)
	if err != nil {
		t.Fatal(err)
	}

	var reqs []halotis.Request
	base := parityStimulus(t, "c17", ckt)
	for _, model := range []string{"ddm", "cdm"} {
		for shift := 0; shift < 3; shift++ {
			st := halotis.Stimulus{}
			for name, w := range base {
				edges := make([]halotis.InputEdge, len(w.Edges))
				copy(edges, w.Edges)
				for i := range edges {
					edges[i].Time += 0.3 * float64(shift)
				}
				st[name] = halotis.InputWave{Init: w.Init, Edges: edges}
			}
			reqs = append(reqs, halotis.Request{
				Model: model, TEnd: 40, Stimulus: halotis.WireStimulus(st), Activity: true,
			})
		}
	}

	local := halotis.NewLocal()
	remote := newRemoteBackend(t, service.Config{Workers: 4, QueueDepth: 64})
	ls, err := local.Open(ctx, ckt)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := remote.Open(ctx, ckt)
	if err != nil {
		t.Fatal(err)
	}

	lbatch, err := ls.RunBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("local batch: %v", err)
	}
	rbatch, err := rs.RunBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("remote batch: %v", err)
	}
	if len(lbatch) != len(reqs) || len(rbatch) != len(reqs) {
		t.Fatalf("batch sizes: local %d, remote %d, want %d", len(lbatch), len(rbatch), len(reqs))
	}
	for i := range reqs {
		single, err := ls.Run(ctx, reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "local batch vs single", lbatch[i], single)
		reportsEqual(t, "remote batch vs local batch", rbatch[i], lbatch[i])
	}
}
