package halotis_test

import (
	"net/http/httptest"
	"testing"

	"halotis"
	"halotis/api/backendtest"
	"halotis/internal/service"
)

// The Session API acceptance tests: every backend passes the shared
// conformance suite (api/backendtest) — bit-identical stats, sampled
// outputs, waveform crossings and VCD against the Local reference for c17
// and the 4x4 multiplier under DDM and CDM, plus RunBatch order and
// batch-equals-single semantics. The cluster backend runs the same suite
// in halotis/cluster.

// newRemoteBackend stands up an in-process halotisd over httptest and
// returns a RemoteBackend speaking to it.
func newRemoteBackend(t *testing.T, cfg service.Config) *halotis.RemoteBackend {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return halotis.NewRemote(ts.URL)
}

// TestLocalConformance self-checks the reference: the suite compares a
// Local backend against another Local backend, pinning RunBatch ordering
// and batch-equals-single on the in-process path.
func TestLocalConformance(t *testing.T) {
	backendtest.Conform(t, halotis.NewLocal())
}

// TestRemoteConformance is the PR 4 Local↔Remote parity guarantee, now
// expressed through the shared suite: a live halotisd behind the Remote
// backend is indistinguishable from in-process execution.
func TestRemoteConformance(t *testing.T) {
	backendtest.Conform(t, newRemoteBackend(t, service.Config{Workers: 4, QueueDepth: 64}))
}
