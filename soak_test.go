package halotis_test

import (
	"fmt"
	"math/rand"
	"testing"

	"halotis"
)

// TestMultiplierSoak runs long random multiplication sequences through the
// 4x4 multiplier under both models and checks every settled vector against
// integer multiplication — the strongest end-to-end functional property of
// the engine (timing plus logic over many vectors with realistic glitching
// in between).
func TestMultiplierSoak(t *testing.T) {
	lib := halotis.DefaultLibrary()
	ckt, err := halotis.Multiplier4x4(lib)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2026))
	const (
		vectors = 12
		period  = 6.0 // extra settle room per vector
	)
	pairs := make([]halotis.MultiplierPair, vectors)
	for i := range pairs {
		pairs[i] = halotis.MultiplierPair{A: uint64(rng.Intn(16)), B: uint64(rng.Intn(16))}
	}
	st, err := halotis.MultiplierSequence(pairs, 4, 4, period, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	horizon := period * float64(vectors)
	for _, m := range []halotis.Model{halotis.DDM, halotis.CDM} {
		res, err := halotis.Simulate(ckt, st, horizon, halotis.WithModel(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// Check the product just before each next vector is applied.
		for k, p := range pairs {
			tCheck := float64(k+1)*period - 0.05
			out := res.OutputLogic(tCheck, lib.VDD/2)
			got := 0
			for i := 0; i < 8; i++ {
				if out[fmt.Sprintf("s%d", i)] {
					got |= 1 << i
				}
			}
			want := int(p.A) * int(p.B)
			if got != want {
				t.Errorf("%v vector %d: %dx%d = %d, want %d", m, k, p.A, p.B, got, want)
			}
		}
		// Waveform invariants across the whole run.
		for _, n := range ckt.Nets {
			if err := res.Waveform(n.Name).Validate(); err != nil {
				t.Fatalf("%v: net %s: %v", m, n.Name, err)
			}
		}
	}
}

// TestLargerMultiplierSettles scales the array up (8x8 = 16-bit products)
// and spot-checks products, exercising the kernel on a ~600-gate netlist.
func TestLargerMultiplierSettles(t *testing.T) {
	lib := halotis.DefaultLibrary()
	ckt, err := halotis.Multiplier(lib, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ckt.Stats().Gates < 500 {
		t.Fatalf("8x8 multiplier suspiciously small: %v", ckt.Stats())
	}
	cases := [][2]uint64{{0, 0}, {255, 255}, {171, 205}, {1, 254}, {100, 99}}
	for _, c := range cases {
		pairs := []halotis.MultiplierPair{{A: 0, B: 0}, {A: c[0], B: c[1]}}
		st, err := halotis.MultiplierSequence(pairs, 8, 8, 5, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := halotis.Simulate(ckt, st, 25)
		if err != nil {
			t.Fatal(err)
		}
		out := res.OutputLogic(25, lib.VDD/2)
		got := 0
		for i := 0; i < 16; i++ {
			if out[fmt.Sprintf("s%d", i)] {
				got |= 1 << i
			}
		}
		if got != int(c[0]*c[1]) {
			t.Errorf("%dx%d = %d, want %d", c[0], c[1], got, c[0]*c[1])
		}
	}
}

// BenchmarkScaling measures kernel throughput as the multiplier grows —
// the "bigger circuitry" requirement from the paper's introduction.
func benchScaling(b *testing.B, n, m int, model halotis.Model) {
	lib := halotis.DefaultLibrary()
	ckt, err := halotis.Multiplier(lib, n, m)
	if err != nil {
		b.Fatal(err)
	}
	all := uint64(1)<<n - 1
	pairs := []halotis.MultiplierPair{{A: 0, B: 0}, {A: all, B: all}, {A: 0, B: 0}, {A: all, B: all}}
	st, err := halotis.MultiplierSequence(pairs, n, m, 5, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := halotis.Simulate(ckt, st, 25, halotis.WithModel(model))
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Stats.EventsProcessed
	}
}

func BenchmarkScaling4x4DDM(b *testing.B)   { benchScaling(b, 4, 4, halotis.DDM) }
func BenchmarkScaling8x8DDM(b *testing.B)   { benchScaling(b, 8, 8, halotis.DDM) }
func BenchmarkScaling12x12DDM(b *testing.B) { benchScaling(b, 12, 12, halotis.DDM) }
func BenchmarkScaling8x8CDM(b *testing.B)   { benchScaling(b, 8, 8, halotis.CDM) }
